//! Subjective transfer graphs.
//!
//! Every node maintains its own picture of "who uploaded how much to whom",
//! assembled from (a) its own direct transfers and (b) records gossiped by
//! peers it encountered. A BarterCast record describes only the reporter's
//! *own* transfers, so edge `(a → b)` is accepted only from reporter `a` or
//! `b`; both reports are stored and the edge weight is their maximum
//! (counters are cumulative, so for honest reporters max == newest).

use rvs_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// How many recently changed edges a graph remembers for fine-grained cache
/// invalidation. A consumer that falls further behind than this must treat
/// the whole graph as changed (see [`SubjectiveGraph::changes_since`]).
const CHANGE_LOG_CAP: usize = 256;

/// Per-edge pair of reports: what the sender claimed and what the receiver
/// claimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct EdgeReports {
    /// KiB claimed by the edge's source (`from` reported its own upload).
    by_from: u64,
    /// KiB claimed by the edge's destination (`to` reported its download).
    by_to: u64,
}

impl EdgeReports {
    fn weight(&self) -> u64 {
        self.by_from.max(self.by_to)
    }
}

/// Stable binary encoding: the two reported counters in declaration order.
impl rvs_checkpoint::Persist for EdgeReports {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.by_from);
        enc.u64(self.by_to);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(EdgeReports {
            by_from: dec.u64()?,
            by_to: dec.u64()?,
        })
    }
}

/// One node's subjective view of the transfer network.
///
/// The graph also carries a **mutation epoch**: a counter bumped every time
/// an installed report changes some edge's *effective* weight (reports that
/// are rejected or stale leave the epoch untouched). Together with a bounded
/// log of recently changed edges this lets contribution caches invalidate
/// lazily and precisely instead of recomputing on every query.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SubjectiveGraph {
    edges: BTreeMap<(NodeId, NodeId), EdgeReports>,
    /// Count of effective-weight changes since creation.
    epoch: u64,
    /// Endpoints of the last `CHANGE_LOG_CAP` weight changes, oldest first;
    /// entry `k` (from the back) corresponds to epoch `epoch - k`.
    changed: VecDeque<(NodeId, NodeId)>,
}

/// Equality is defined over graph *content* only: two graphs that agree on
/// every edge weight are equal regardless of how many redundant or stale
/// reports each one absorbed along the way (epoch and change log are
/// bookkeeping, not knowledge).
impl PartialEq for SubjectiveGraph {
    fn eq(&self, other: &Self) -> bool {
        self.edges == other.edges
    }
}

impl SubjectiveGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a report from `reporter` that `from` uploaded `kib` KiB to
    /// `to`. Returns `false` (rejecting the report) unless the reporter is
    /// one of the edge's endpoints — the protocol's first line of defence
    /// against fabricated third-party edges.
    ///
    /// Cumulative counters only grow, so a report smaller than the stored
    /// one is ignored (stale gossip).
    pub fn insert_report(&mut self, reporter: NodeId, from: NodeId, to: NodeId, kib: u64) -> bool {
        if reporter != from && reporter != to {
            return false;
        }
        if from == to {
            return false;
        }
        let e = self.edges.entry((from, to)).or_default();
        let before = e.weight();
        if reporter == from {
            e.by_from = e.by_from.max(kib);
        } else {
            e.by_to = e.by_to.max(kib);
        }
        if e.weight() != before {
            self.epoch += 1;
            if self.changed.len() == CHANGE_LOG_CAP {
                self.changed.pop_front();
            }
            self.changed.push_back((from, to));
        }
        true
    }

    /// The mutation epoch: how many times an effective edge weight has
    /// changed since this graph was created. Rejected and stale reports do
    /// not advance it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The edges whose effective weight changed after epoch `since`
    /// (exclusive), oldest first — or `None` when the bounded change log no
    /// longer reaches back that far, in which case the caller must assume
    /// *anything* may have changed.
    pub fn changes_since(&self, since: u64) -> Option<impl Iterator<Item = (NodeId, NodeId)> + '_> {
        let behind = self.epoch.saturating_sub(since);
        if behind > self.changed.len() as u64 {
            return None;
        }
        let skip = self.changed.len() - behind as usize;
        Some(self.changed.iter().skip(skip).copied())
    }

    /// Effective weight of edge `(from → to)` in KiB.
    pub fn edge_kib(&self, from: NodeId, to: NodeId) -> u64 {
        self.edges.get(&(from, to)).map(|e| e.weight()).unwrap_or(0)
    }

    /// All edges with nonzero weight, deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.edges
            .iter()
            .filter(|(_, e)| e.weight() > 0)
            .map(|(&(f, t), e)| (f, t, e.weight()))
    }

    /// Outgoing neighbours of `node` with edge weights.
    pub fn out_edges(&self, node: NodeId) -> Vec<(NodeId, u64)> {
        self.edges
            .range((node, NodeId(0))..=(node, NodeId(u32::MAX)))
            .filter(|(_, e)| e.weight() > 0)
            .map(|(&(_, t), e)| (t, e.weight()))
            .collect()
    }

    /// Number of distinct nonzero edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().filter(|e| e.weight() > 0).count()
    }

    /// All node ids mentioned by any edge (sorted, deduplicated).
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .edges
            .iter()
            .filter(|(_, e)| e.weight() > 0)
            .flat_map(|(&(f, t), _)| [f, t])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Stable binary encoding: edge map, mutation epoch, then the bounded
/// change log oldest-first. The bookkeeping is persisted verbatim so that
/// contribution-cache invalidation resumes exactly where it left off.
impl rvs_checkpoint::Persist for SubjectiveGraph {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.edges.persist(enc);
        enc.u64(self.epoch);
        self.changed.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SubjectiveGraph {
            edges: BTreeMap::restore(dec)?,
            epoch: dec.u64()?,
            changed: VecDeque::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_reports_accepted() {
        let mut g = SubjectiveGraph::new();
        assert!(g.insert_report(NodeId(1), NodeId(1), NodeId(2), 100));
        assert!(g.insert_report(NodeId(2), NodeId(1), NodeId(2), 90));
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 100);
    }

    #[test]
    fn third_party_reports_rejected() {
        let mut g = SubjectiveGraph::new();
        assert!(!g.insert_report(NodeId(9), NodeId(1), NodeId(2), 1_000_000));
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = SubjectiveGraph::new();
        assert!(!g.insert_report(NodeId(1), NodeId(1), NodeId(1), 5));
    }

    #[test]
    fn cumulative_counters_never_shrink() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 500);
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 300); // stale
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 500);
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 800);
        assert_eq!(g.edge_kib(NodeId(1), NodeId(2)), 800);
    }

    #[test]
    fn direction_matters() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 100);
        assert_eq!(g.edge_kib(NodeId(2), NodeId(1)), 0);
    }

    #[test]
    fn out_edges_sorted_by_target() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(5), NodeId(5), NodeId(9), 10);
        g.insert_report(NodeId(5), NodeId(5), NodeId(2), 20);
        g.insert_report(NodeId(5), NodeId(5), NodeId(7), 30);
        let out = g.out_edges(NodeId(5));
        assert_eq!(out, vec![(NodeId(2), 20), (NodeId(7), 30), (NodeId(9), 10)]);
    }

    #[test]
    fn epoch_tracks_effective_weight_changes_only() {
        let mut g = SubjectiveGraph::new();
        assert_eq!(g.epoch(), 0);
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 100);
        assert_eq!(g.epoch(), 1);
        // Stale (smaller) report: accepted but changes nothing.
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 50);
        assert_eq!(g.epoch(), 1);
        // Counter-report below the stored max: weight unchanged.
        g.insert_report(NodeId(2), NodeId(1), NodeId(2), 80);
        assert_eq!(g.epoch(), 1);
        // Counter-report above the stored max: weight changes.
        g.insert_report(NodeId(2), NodeId(1), NodeId(2), 120);
        assert_eq!(g.epoch(), 2);
        // Rejected third-party report: nothing changes.
        g.insert_report(NodeId(9), NodeId(3), NodeId(4), 7);
        assert_eq!(g.epoch(), 2);
    }

    #[test]
    fn changes_since_lists_changed_edges_in_order() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(1), NodeId(1), NodeId(2), 10);
        g.insert_report(NodeId(3), NodeId(3), NodeId(4), 10);
        let all = g.changes_since(0).map(|it| it.collect::<Vec<_>>());
        assert_eq!(
            all,
            Some(vec![(NodeId(1), NodeId(2)), (NodeId(3), NodeId(4))])
        );
        let tail = g.changes_since(1).map(|it| it.collect::<Vec<_>>());
        assert_eq!(tail, Some(vec![(NodeId(3), NodeId(4))]));
        assert_eq!(g.changes_since(2).map(Iterator::count), Some(0));
    }

    #[test]
    fn change_log_overflow_reports_unknown() {
        let mut g = SubjectiveGraph::new();
        for k in 0..(CHANGE_LOG_CAP as u64 + 10) {
            g.insert_report(NodeId(1), NodeId(1), NodeId(2), k + 1);
        }
        assert_eq!(g.epoch(), CHANGE_LOG_CAP as u64 + 10);
        // Epoch 5 is beyond the bounded log: the graph cannot say.
        assert!(g.changes_since(5).is_none());
        // Recent epochs are still covered.
        assert_eq!(g.changes_since(g.epoch() - 3).map(Iterator::count), Some(3));
    }

    #[test]
    fn equality_ignores_bookkeeping() {
        let mut a = SubjectiveGraph::new();
        a.insert_report(NodeId(1), NodeId(1), NodeId(2), 100);
        let mut b = SubjectiveGraph::new();
        // Same final content via more (stale) installs: different epoch.
        b.insert_report(NodeId(1), NodeId(1), NodeId(2), 40);
        b.insert_report(NodeId(1), NodeId(1), NodeId(2), 100);
        b.insert_report(NodeId(1), NodeId(1), NodeId(2), 90);
        assert_ne!(a.epoch(), b.epoch());
        assert_eq!(a, b);
    }

    #[test]
    fn nodes_enumerates_endpoints() {
        let mut g = SubjectiveGraph::new();
        g.insert_report(NodeId(3), NodeId(3), NodeId(1), 10);
        g.insert_report(NodeId(3), NodeId(4), NodeId(3), 10);
        assert_eq!(g.nodes(), vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(g.edge_count(), 2);
    }
}
