//! The BarterCast record-exchange protocol.
//!
//! Each node keeps a [`SubjectiveGraph`]. Honest nodes learn their *own*
//! direct transfer totals from their BitTorrent client (modelled by syncing
//! from the global [`TransferLedger`] ground truth) and, when two peers
//! meet through the PSS, they exchange their own direct records — never
//! hearsay — which the receiver installs into its graph. Contribution
//! estimates are hop-bounded maxflows over the receiver's graph.

use crate::graph::SubjectiveGraph;
use crate::maxflow::max_flow_bounded;
use rvs_bittorrent::TransferLedger;
use rvs_sim::NodeId;
use rvs_telemetry::{BarterCounters, SharedCounter};
use serde::{Deserialize, Serialize};

/// Tuning for BarterCast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BarterCastConfig {
    /// Maximum records sent per exchange (largest-first, as deployed).
    pub max_records_per_exchange: usize,
    /// Hop bound for contribution maxflow (deployed Tribler uses 2).
    pub max_hops: usize,
}

impl Default for BarterCastConfig {
    fn default() -> Self {
        BarterCastConfig {
            max_records_per_exchange: 50,
            max_hops: 2,
        }
    }
}

/// One direct-transfer record: "`from` uploaded `kib` KiB to `to`", as
/// reported by one of the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Uploader.
    pub from: NodeId,
    /// Downloader.
    pub to: NodeId,
    /// Cumulative KiB.
    pub kib: u64,
}

/// Network-wide BarterCast state: one subjective graph per node.
#[derive(Debug, Clone)]
pub struct BarterCast {
    cfg: BarterCastConfig,
    graphs: Vec<SubjectiveGraph>,
    // Shared (relaxed-atomic) counters: `contribution_kib` takes `&self`
    // and sits on the experience function's hot path.
    exchanges: SharedCounter,
    maxflow_evaluations: SharedCounter,
}

impl BarterCast {
    /// BarterCast over a population of `n` nodes.
    pub fn new(n: usize, cfg: BarterCastConfig) -> Self {
        BarterCast {
            cfg,
            graphs: vec![SubjectiveGraph::new(); n],
            exchanges: SharedCounter::default(),
            maxflow_evaluations: SharedCounter::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> BarterCastConfig {
        self.cfg
    }

    /// Population-wide record-exchange and maxflow counters.
    pub fn counters(&self) -> BarterCounters {
        BarterCounters {
            exchanges: self.exchanges.get(),
            maxflow_evaluations: self.maxflow_evaluations.get(),
        }
    }

    /// Node `i`'s subjective graph.
    pub fn graph(&self, i: NodeId) -> &SubjectiveGraph {
        &self.graphs[i.index()]
    }

    /// Refresh node `i`'s knowledge of its own direct transfers from the
    /// simulation's ground-truth ledger (its BitTorrent client's local
    /// statistics — always truthful for honest nodes).
    pub fn sync_own_records(&mut self, i: NodeId, ledger: &TransferLedger) {
        let g = &mut self.graphs[i.index()];
        for (to, kib) in ledger.uploads_from(i) {
            g.insert_report(i, i, to, kib);
        }
        for (from, kib) in ledger.uploads_to(i) {
            g.insert_report(i, from, i, kib);
        }
    }

    /// Node `i`'s own direct records (edges incident to `i`), largest
    /// first, truncated to the per-exchange budget.
    pub fn own_records(&self, i: NodeId) -> Vec<Record> {
        let g = &self.graphs[i.index()];
        let mut recs: Vec<Record> = g
            .edges()
            .filter(|&(f, t, _)| f == i || t == i)
            .map(|(from, to, kib)| Record { from, to, kib })
            .collect();
        recs.sort_by_key(|r| (std::cmp::Reverse(r.kib), r.from, r.to));
        recs.truncate(self.cfg.max_records_per_exchange);
        recs
    }

    /// A PSS encounter between `i` and `j`: both send their own records and
    /// install the other's. Reporter validity is enforced by the graphs.
    pub fn exchange(&mut self, i: NodeId, j: NodeId) {
        if i == j {
            return;
        }
        self.exchanges.incr();
        let from_i = self.own_records(i);
        let from_j = self.own_records(j);
        for r in from_j {
            self.graphs[i.index()].insert_report(j, r.from, r.to, r.kib);
        }
        for r in from_i {
            self.graphs[j.index()].insert_report(i, r.from, r.to, r.kib);
        }
    }

    /// Attack hook: deliver an arbitrary (possibly fabricated) record from
    /// `reporter` to `receiver`. The receiver still applies the
    /// endpoint-validity rule, so fabrication is limited to edges incident
    /// to the reporter.
    pub fn inject_report(&mut self, receiver: NodeId, reporter: NodeId, record: Record) -> bool {
        self.graphs[receiver.index()].insert_report(reporter, record.from, record.to, record.kib)
    }

    /// Contribution of `j` towards `i` in KiB: hop-bounded maxflow `j → i`
    /// over `i`'s subjective graph (the paper's `f_{j→i}`).
    pub fn contribution_kib(&self, i: NodeId, j: NodeId) -> u64 {
        self.maxflow_evaluations.incr();
        max_flow_bounded(&self.graphs[i.index()], j, i, self.cfg.max_hops)
    }

    /// Contribution in MiB (the unit the paper's threshold `T` uses).
    pub fn contribution_mib(&self, i: NodeId, j: NodeId) -> f64 {
        self.contribution_kib(i, j) as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(edges: &[(u32, u32, u64)]) -> TransferLedger {
        let mut l = TransferLedger::new();
        for &(f, t, k) in edges {
            l.credit(NodeId(f), NodeId(t), k);
        }
        l
    }

    #[test]
    fn own_sync_only_installs_incident_edges() {
        let l = ledger(&[(1, 2, 100), (3, 4, 999)]);
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        assert_eq!(bc.graph(NodeId(1)).edge_kib(NodeId(1), NodeId(2)), 100);
        assert_eq!(bc.graph(NodeId(1)).edge_kib(NodeId(3), NodeId(4)), 0);
    }

    #[test]
    fn direct_contribution_via_own_records() {
        // j=2 uploaded 10 MiB to i=1; i sees it directly after sync.
        let l = ledger(&[(2, 1, 10 * 1024)]);
        let mut bc = BarterCast::new(3, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        assert!((bc.contribution_mib(NodeId(1), NodeId(2)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exchange_spreads_records_both_ways() {
        let l = ledger(&[(2, 3, 2048), (4, 1, 512)]);
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        bc.sync_own_records(NodeId(2), &l);
        bc.sync_own_records(NodeId(1), &l);
        bc.exchange(NodeId(1), NodeId(2));
        // 1 learned about 2→3; 2 learned about 4→1.
        assert_eq!(bc.graph(NodeId(1)).edge_kib(NodeId(2), NodeId(3)), 2048);
        assert_eq!(bc.graph(NodeId(2)).edge_kib(NodeId(4), NodeId(1)), 512);
    }

    #[test]
    fn two_hop_contribution_through_intermediary() {
        // j=3 uploaded to 2; 2 uploaded to i=1. After i syncs and meets 2,
        // f_{3→1} = min(3→2, 2→1).
        let l = ledger(&[(3, 2, 4096), (2, 1, 1024)]);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        bc.sync_own_records(NodeId(2), &l);
        bc.exchange(NodeId(1), NodeId(2));
        assert_eq!(bc.contribution_kib(NodeId(1), NodeId(3)), 1024);
    }

    #[test]
    fn exchange_budget_truncates_largest_first() {
        let cfg = BarterCastConfig {
            max_records_per_exchange: 2,
            max_hops: 2,
        };
        let mut edges = Vec::new();
        for t in 2..10 {
            edges.push((1u32, t as u32, t as u64 * 100));
        }
        let l = ledger(&edges);
        let mut bc = BarterCast::new(10, cfg);
        bc.sync_own_records(NodeId(1), &l);
        let recs = bc.own_records(NodeId(1));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kib, 900);
        assert_eq!(recs[1].kib, 800);
    }

    #[test]
    fn injected_third_party_lie_is_rejected() {
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        let lie = Record {
            from: NodeId(2),
            to: NodeId(3),
            kib: u64::MAX,
        };
        assert!(!bc.inject_report(NodeId(1), NodeId(4), lie));
        assert_eq!(bc.graph(NodeId(1)).edge_count(), 0);
    }

    #[test]
    fn injected_endpoint_lie_has_bounded_leverage() {
        // Honest: 2 uploaded 5 MiB to 1. Colluder 3 lies that it uploaded
        // 1 TiB to 2. 3's contribution towards 1 is capped at 5 MiB.
        let l = ledger(&[(2, 1, 5 * 1024)]);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        let lie = Record {
            from: NodeId(3),
            to: NodeId(2),
            kib: 1 << 40,
        };
        assert!(bc.inject_report(NodeId(1), NodeId(3), lie));
        assert_eq!(bc.contribution_kib(NodeId(1), NodeId(3)), 5 * 1024);
    }

    #[test]
    fn unknown_peer_contributes_zero() {
        let bc = BarterCast::new(3, BarterCastConfig::default());
        assert_eq!(bc.contribution_kib(NodeId(0), NodeId(2)), 0);
    }

    #[test]
    fn self_exchange_is_noop() {
        let mut bc = BarterCast::new(2, BarterCastConfig::default());
        bc.exchange(NodeId(1), NodeId(1));
        assert_eq!(bc.graph(NodeId(1)).edge_count(), 0);
    }
}
