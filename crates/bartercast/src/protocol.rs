//! The BarterCast record-exchange protocol.
//!
//! Each node keeps a [`SubjectiveGraph`]. Honest nodes learn their *own*
//! direct transfer totals from their BitTorrent client (modelled by syncing
//! from the global [`TransferLedger`] ground truth) and, when two peers
//! meet through the PSS, they exchange their own direct records — never
//! hearsay — which the receiver installs into its graph. Contribution
//! estimates are hop-bounded maxflows over the receiver's graph.

use crate::cache::{ContributionCache, Lookup};
use crate::graph::SubjectiveGraph;
use crate::maxflow::max_flow_bounded;
use rvs_bittorrent::TransferLedger;
use rvs_sim::{DetRng, NodeId};
use rvs_telemetry::{BarterCounters, SharedCounter};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Tuning for BarterCast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BarterCastConfig {
    /// Maximum records sent per exchange (largest-first, as deployed).
    pub max_records_per_exchange: usize,
    /// Hop bound for contribution maxflow (deployed Tribler uses 2).
    pub max_hops: usize,
    /// Memoize contribution queries per `(i, j)` pair with epoch-based
    /// invalidation (see [`crate::cache`]). Results are proven identical
    /// with and without the cache; switching it off exists for the
    /// differential tests and for measuring the cache's effect.
    pub cache_contributions: bool,
}

impl Default for BarterCastConfig {
    fn default() -> Self {
        BarterCastConfig {
            max_records_per_exchange: 50,
            max_hops: 2,
            cache_contributions: true,
        }
    }
}

impl BarterCastConfig {
    /// This configuration with contribution caching disabled — the
    /// reference twin the differential tests compare against.
    pub fn without_cache(self) -> Self {
        BarterCastConfig {
            cache_contributions: false,
            ..self
        }
    }
}

/// Stable binary encoding: the three tuning fields in declaration order.
impl rvs_checkpoint::Persist for BarterCastConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.max_records_per_exchange);
        enc.usize(self.max_hops);
        enc.bool(self.cache_contributions);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(BarterCastConfig {
            max_records_per_exchange: dec.usize()?,
            max_hops: dec.usize()?,
            cache_contributions: dec.bool()?,
        })
    }
}

/// One direct-transfer record: "`from` uploaded `kib` KiB to `to`", as
/// reported by one of the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Uploader.
    pub from: NodeId,
    /// Downloader.
    pub to: NodeId,
    /// Cumulative KiB.
    pub kib: u64,
}

/// Stable binary encoding: uploader, downloader, KiB. (Records are a
/// wire message, not persistent state — this encoding exists for the
/// wire-fuzz corpus, which decodes adversarial bytes through it.)
impl rvs_checkpoint::Persist for Record {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.from.persist(enc);
        self.to.persist(enc);
        enc.u64(self.kib);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Record {
            from: NodeId::restore(dec)?,
            to: NodeId::restore(dec)?,
            kib: dec.u64()?,
        })
    }
}

/// Network-wide BarterCast state: one subjective graph per node.
#[derive(Debug, Clone)]
pub struct BarterCast {
    cfg: BarterCastConfig,
    graphs: Vec<SubjectiveGraph>,
    // Memoized contributions, reconciled lazily against graph epochs.
    // `RefCell` because `contribution_kib` takes `&self` (it sits under
    // read-only accessors all the way up the stack) yet a hit still has to
    // be recorded; queries never re-enter the cache, so the short borrows
    // in `query_cached` can't conflict.
    cache: RefCell<ContributionCache>,
    // Shared (relaxed-atomic) counters: `contribution_kib` takes `&self`
    // and sits on the experience function's hot path.
    exchanges: SharedCounter,
    maxflow_evaluations: SharedCounter,
    cache_hits: SharedCounter,
    cache_misses: SharedCounter,
}

impl BarterCast {
    /// BarterCast over a population of `n` nodes.
    pub fn new(n: usize, cfg: BarterCastConfig) -> Self {
        BarterCast {
            cfg,
            graphs: vec![SubjectiveGraph::new(); n],
            cache: RefCell::new(ContributionCache::new(n)),
            exchanges: SharedCounter::default(),
            maxflow_evaluations: SharedCounter::default(),
            cache_hits: SharedCounter::default(),
            cache_misses: SharedCounter::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> BarterCastConfig {
        self.cfg
    }

    /// Population-wide record-exchange, maxflow, and cache counters.
    pub fn counters(&self) -> BarterCounters {
        BarterCounters {
            exchanges: self.exchanges.get(),
            maxflow_evaluations: self.maxflow_evaluations.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
        }
    }

    /// Node `i`'s subjective graph.
    pub fn graph(&self, i: NodeId) -> &SubjectiveGraph {
        &self.graphs[i.index()]
    }

    /// Refresh node `i`'s knowledge of its own direct transfers from the
    /// simulation's ground-truth ledger (its BitTorrent client's local
    /// statistics — always truthful for honest nodes).
    pub fn sync_own_records(&mut self, i: NodeId, ledger: &TransferLedger) {
        let g = &mut self.graphs[i.index()];
        for (to, kib) in ledger.uploads_from(i) {
            g.insert_report(i, i, to, kib);
        }
        for (from, kib) in ledger.uploads_to(i) {
            g.insert_report(i, from, i, kib);
        }
    }

    /// Node `i`'s own direct records (edges incident to `i`), largest
    /// first, truncated to the per-exchange budget.
    pub fn own_records(&self, i: NodeId) -> Vec<Record> {
        let g = &self.graphs[i.index()];
        let mut recs: Vec<Record> = g
            .edges()
            .filter(|&(f, t, _)| f == i || t == i)
            .map(|(from, to, kib)| Record { from, to, kib })
            .collect();
        recs.sort_by_key(|r| (std::cmp::Reverse(r.kib), r.from, r.to));
        recs.truncate(self.cfg.max_records_per_exchange);
        recs
    }

    /// Count one record-exchange encounter. The scenario engine calls
    /// this when it drives the two delivery halves itself (guarded path)
    /// instead of going through [`BarterCast::exchange`].
    pub fn mark_exchange(&self) {
        self.exchanges.incr();
    }

    /// Install `reporter`'s records into `receiver`'s subjective graph
    /// (the receive half of an exchange). Reporter validity is enforced
    /// by the graph: only edges incident to `reporter` are accepted.
    pub fn deliver_records(&mut self, receiver: NodeId, reporter: NodeId, recs: &[Record]) {
        for r in recs {
            self.graphs[receiver.index()].insert_report(reporter, r.from, r.to, r.kib);
        }
    }

    /// A PSS encounter between `i` and `j`: both send their own records and
    /// install the other's. Reporter validity is enforced by the graphs.
    pub fn exchange(&mut self, i: NodeId, j: NodeId) {
        if i == j {
            return;
        }
        self.exchanges.incr();
        let from_i = self.own_records(i);
        let from_j = self.own_records(j);
        self.deliver_records(i, j, &from_j);
        self.deliver_records(j, i, &from_i);
    }

    /// Attack hook: deliver an arbitrary (possibly fabricated) record from
    /// `reporter` to `receiver`. The receiver still applies the
    /// endpoint-validity rule, so fabrication is limited to edges incident
    /// to the reporter.
    pub fn inject_report(&mut self, receiver: NodeId, reporter: NodeId, record: Record) -> bool {
        self.graphs[receiver.index()].insert_report(reporter, record.from, record.to, record.kib)
    }

    /// Contribution of `j` towards `i` in KiB: hop-bounded maxflow `j → i`
    /// over `i`'s subjective graph (the paper's `f_{j→i}`). Served from the
    /// incremental cache when enabled; the differential tests prove both
    /// paths byte-identical.
    pub fn contribution_kib(&self, i: NodeId, j: NodeId) -> u64 {
        if !self.cfg.cache_contributions {
            self.maxflow_evaluations.incr();
            return max_flow_bounded(&self.graphs[i.index()], j, i, self.cfg.max_hops);
        }
        let mut cache = self.cache.borrow_mut();
        let graph = &self.graphs[i.index()];
        cache.reconcile(i, graph, self.cfg.max_hops);
        self.query_cached(&mut cache, graph, i, j)
    }

    /// Contribution in MiB (the unit the paper's threshold `T` uses).
    pub fn contribution_mib(&self, i: NodeId, j: NodeId) -> f64 {
        self.contribution_kib(i, j) as f64 / 1024.0
    }

    /// Batched contributions `f_{j→i}` for one evaluator `i` and many
    /// peers, in KiB. Reconciles `i`'s cache once instead of per query —
    /// the shape the round-level gating sweeps and the Figure 5 contribution
    /// matrix use.
    pub fn contributions_kib(&self, i: NodeId, peers: &[NodeId]) -> Vec<u64> {
        if !self.cfg.cache_contributions {
            return peers
                .iter()
                .map(|&j| {
                    self.maxflow_evaluations.incr();
                    max_flow_bounded(&self.graphs[i.index()], j, i, self.cfg.max_hops)
                })
                .collect();
        }
        let mut cache = self.cache.borrow_mut();
        let graph = &self.graphs[i.index()];
        cache.reconcile(i, graph, self.cfg.max_hops);
        peers
            .iter()
            .map(|&j| self.query_cached(&mut cache, graph, i, j))
            .collect()
    }

    /// Batched [`Self::contribution_mib`].
    pub fn contributions_mib(&self, i: NodeId, peers: &[NodeId]) -> Vec<f64> {
        self.contributions_kib(i, peers)
            .into_iter()
            .map(|kib| kib as f64 / 1024.0)
            .collect()
    }

    /// One cache-aware query against an already reconciled node cache.
    fn query_cached(
        &self,
        cache: &mut ContributionCache,
        graph: &SubjectiveGraph,
        i: NodeId,
        j: NodeId,
    ) -> u64 {
        match cache.lookup(i, j) {
            Lookup::Hit(kib) => {
                self.cache_hits.incr();
                kib
            }
            Lookup::Miss => {
                self.cache_misses.incr();
                self.maxflow_evaluations.incr();
                let kib = max_flow_bounded(graph, j, i, self.cfg.max_hops);
                cache.store(i, j, kib);
                kib
            }
        }
    }

    /// `f_{j→i}` recomputed directly from the graph, bypassing cache and
    /// counters. This is the oracle the runtime auditor and the
    /// differential tests compare cached answers against.
    pub fn contribution_kib_uncached(&self, i: NodeId, j: NodeId) -> u64 {
        max_flow_bounded(&self.graphs[i.index()], j, i, self.cfg.max_hops)
    }

    /// Number of live cache entries for evaluator `i` (diagnostics only).
    pub fn cached_entry_count(&self, i: NodeId) -> usize {
        self.cache.borrow().len(i)
    }

    /// Sampled cache-coherence audit for evaluator `i`: reconcile its
    /// cache, draw up to `sample` surviving entries at random, recompute
    /// each from scratch, and describe every mismatch. An empty result
    /// means the sampled entries are exact; the scenario [`Auditor`] calls
    /// this every gossip round and asserts emptiness.
    ///
    /// [`Auditor`]: https://docs.rs/rvs-scenario
    pub fn audit_cache_coherence(&self, i: NodeId, sample: usize, rng: &mut DetRng) -> Vec<String> {
        if !self.cfg.cache_contributions || sample == 0 {
            return Vec::new();
        }
        let entries: Vec<(NodeId, u64)> = {
            let mut cache = self.cache.borrow_mut();
            cache.reconcile(i, &self.graphs[i.index()], self.cfg.max_hops);
            cache.entries(i).collect()
        };
        if entries.is_empty() {
            return Vec::new();
        }
        let picks = rng.sample_indices(entries.len(), sample);
        let mut violations = Vec::new();
        for idx in picks {
            let (j, cached) = entries[idx];
            let fresh = self.contribution_kib_uncached(i, j);
            if cached != fresh {
                violations.push(format!(
                    "stale contribution cache: f_{{{j}->{i}}} cached {cached} KiB, \
                     recomputed {fresh} KiB"
                ));
            }
        }
        violations
    }
}

/// Stable binary encoding: config, per-node subjective graphs, the
/// contribution cache (persisted verbatim so cache hit/miss behaviour
/// resumes exactly), then the four counters in declaration order.
impl rvs_checkpoint::Persist for BarterCast {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.cfg.persist(enc);
        self.graphs.persist(enc);
        self.cache.borrow().persist(enc);
        self.exchanges.persist(enc);
        self.maxflow_evaluations.persist(enc);
        self.cache_hits.persist(enc);
        self.cache_misses.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(BarterCast {
            cfg: BarterCastConfig::restore(dec)?,
            graphs: Vec::restore(dec)?,
            cache: RefCell::new(ContributionCache::restore(dec)?),
            exchanges: SharedCounter::restore(dec)?,
            maxflow_evaluations: SharedCounter::restore(dec)?,
            cache_hits: SharedCounter::restore(dec)?,
            cache_misses: SharedCounter::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(edges: &[(u32, u32, u64)]) -> TransferLedger {
        let mut l = TransferLedger::new();
        for &(f, t, k) in edges {
            l.credit(NodeId(f), NodeId(t), k);
        }
        l
    }

    #[test]
    fn own_sync_only_installs_incident_edges() {
        let l = ledger(&[(1, 2, 100), (3, 4, 999)]);
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        assert_eq!(bc.graph(NodeId(1)).edge_kib(NodeId(1), NodeId(2)), 100);
        assert_eq!(bc.graph(NodeId(1)).edge_kib(NodeId(3), NodeId(4)), 0);
    }

    #[test]
    fn direct_contribution_via_own_records() {
        // j=2 uploaded 10 MiB to i=1; i sees it directly after sync.
        let l = ledger(&[(2, 1, 10 * 1024)]);
        let mut bc = BarterCast::new(3, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        assert!((bc.contribution_mib(NodeId(1), NodeId(2)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exchange_spreads_records_both_ways() {
        let l = ledger(&[(2, 3, 2048), (4, 1, 512)]);
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        bc.sync_own_records(NodeId(2), &l);
        bc.sync_own_records(NodeId(1), &l);
        bc.exchange(NodeId(1), NodeId(2));
        // 1 learned about 2→3; 2 learned about 4→1.
        assert_eq!(bc.graph(NodeId(1)).edge_kib(NodeId(2), NodeId(3)), 2048);
        assert_eq!(bc.graph(NodeId(2)).edge_kib(NodeId(4), NodeId(1)), 512);
    }

    #[test]
    fn two_hop_contribution_through_intermediary() {
        // j=3 uploaded to 2; 2 uploaded to i=1. After i syncs and meets 2,
        // f_{3→1} = min(3→2, 2→1).
        let l = ledger(&[(3, 2, 4096), (2, 1, 1024)]);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        bc.sync_own_records(NodeId(2), &l);
        bc.exchange(NodeId(1), NodeId(2));
        assert_eq!(bc.contribution_kib(NodeId(1), NodeId(3)), 1024);
    }

    #[test]
    fn exchange_budget_truncates_largest_first() {
        let cfg = BarterCastConfig {
            max_records_per_exchange: 2,
            ..BarterCastConfig::default()
        };
        let mut edges = Vec::new();
        for t in 2..10 {
            edges.push((1u32, t as u32, t as u64 * 100));
        }
        let l = ledger(&edges);
        let mut bc = BarterCast::new(10, cfg);
        bc.sync_own_records(NodeId(1), &l);
        let recs = bc.own_records(NodeId(1));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kib, 900);
        assert_eq!(recs[1].kib, 800);
    }

    #[test]
    fn injected_third_party_lie_is_rejected() {
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        let lie = Record {
            from: NodeId(2),
            to: NodeId(3),
            kib: u64::MAX,
        };
        assert!(!bc.inject_report(NodeId(1), NodeId(4), lie));
        assert_eq!(bc.graph(NodeId(1)).edge_count(), 0);
    }

    #[test]
    fn injected_endpoint_lie_has_bounded_leverage() {
        // Honest: 2 uploaded 5 MiB to 1. Colluder 3 lies that it uploaded
        // 1 TiB to 2. 3's contribution towards 1 is capped at 5 MiB.
        let l = ledger(&[(2, 1, 5 * 1024)]);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        let lie = Record {
            from: NodeId(3),
            to: NodeId(2),
            kib: 1 << 40,
        };
        assert!(bc.inject_report(NodeId(1), NodeId(3), lie));
        assert_eq!(bc.contribution_kib(NodeId(1), NodeId(3)), 5 * 1024);
    }

    #[test]
    fn unknown_peer_contributes_zero() {
        let bc = BarterCast::new(3, BarterCastConfig::default());
        assert_eq!(bc.contribution_kib(NodeId(0), NodeId(2)), 0);
    }

    #[test]
    fn self_exchange_is_noop() {
        let mut bc = BarterCast::new(2, BarterCastConfig::default());
        bc.exchange(NodeId(1), NodeId(1));
        assert_eq!(bc.graph(NodeId(1)).edge_count(), 0);
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let l = ledger(&[(2, 1, 10 * 1024)]);
        let mut bc = BarterCast::new(3, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        let first = bc.contribution_kib(NodeId(1), NodeId(2));
        let again = bc.contribution_kib(NodeId(1), NodeId(2));
        assert_eq!(first, again);
        let c = bc.counters();
        assert_eq!(
            c.maxflow_evaluations, 1,
            "second query must be served cached"
        );
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.cache_hits, 1);
    }

    #[test]
    fn graph_mutation_invalidates_affected_pair() {
        let mut l = ledger(&[(2, 1, 1024)]);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        assert_eq!(bc.contribution_kib(NodeId(1), NodeId(2)), 1024);
        // New upload lands: the cached value must not survive.
        l.credit(NodeId(2), NodeId(1), 1024);
        bc.sync_own_records(NodeId(1), &l);
        assert_eq!(bc.contribution_kib(NodeId(1), NodeId(2)), 2048);
    }

    #[test]
    fn cache_disabled_twin_counts_every_evaluation() {
        let l = ledger(&[(2, 1, 512)]);
        let mut bc = BarterCast::new(3, BarterCastConfig::default().without_cache());
        bc.sync_own_records(NodeId(1), &l);
        for _ in 0..5 {
            assert_eq!(bc.contribution_kib(NodeId(1), NodeId(2)), 512);
        }
        let c = bc.counters();
        assert_eq!(c.maxflow_evaluations, 5);
        assert_eq!(c.cache_hits + c.cache_misses, 0);
    }

    #[test]
    fn batch_matches_single_queries() {
        let l = ledger(&[(2, 1, 100), (3, 1, 200), (3, 2, 50)]);
        let mut bc = BarterCast::new(4, BarterCastConfig::default());
        for i in 0..4 {
            bc.sync_own_records(NodeId(i), &l);
        }
        bc.exchange(NodeId(1), NodeId(2));
        bc.exchange(NodeId(1), NodeId(3));
        let peers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let batch = bc.contributions_kib(NodeId(1), &peers);
        for (k, &j) in peers.iter().enumerate() {
            assert_eq!(batch[k], bc.contribution_kib(NodeId(1), j));
            assert_eq!(batch[k], bc.contribution_kib_uncached(NodeId(1), j));
        }
    }

    #[test]
    fn coherence_audit_is_clean_under_churn() {
        use rvs_sim::DetRng;
        let mut rng = DetRng::new(7);
        let mut l = TransferLedger::new();
        let mut bc = BarterCast::new(6, BarterCastConfig::default());
        for round in 0..50u64 {
            l.credit(
                NodeId(rng.below(6) as u32),
                NodeId(rng.below(6) as u32 % 5),
                1 + rng.below(500),
            );
            let a = NodeId(rng.below(6) as u32);
            let b = NodeId(rng.below(6) as u32);
            bc.sync_own_records(a, &l);
            bc.sync_own_records(b, &l);
            bc.exchange(a, b);
            let i = NodeId(rng.below(6) as u32);
            let j = NodeId(rng.below(6) as u32);
            bc.contribution_kib(i, j);
            let violations = bc.audit_cache_coherence(i, 4, &mut rng);
            assert!(violations.is_empty(), "round {round}: {violations:?}");
        }
    }
}
