//! BarterCast: decentralized contribution accounting and the experience
//! function (paper §V-B).
//!
//! "By using BarterCast, any node in the system can estimate the
//! contribution of any other node … based on up- and download statistics
//! that are exchanged among nodes in a reliable way. First, nodes record
//! statistics of their own BitTorrent file-transfers. Second, nodes
//! exchange their own direct statistics with other peers they encounter.
//! Based on these combined statistics each peer can build a graph of the
//! network with directed edges that denote the amount of MBs transferred
//! from one node to another node. The protocol then applies a maxflow
//! algorithm to derive peer contributions."
//!
//! Modules:
//!
//! * [`graph`] — per-node subjective transfer graphs with reporter-checked
//!   edge insertion (a peer may only report its *own* transfers) and a
//!   mutation epoch + bounded change log driving cache invalidation;
//! * [`maxflow`] — hop-bounded Edmonds–Karp, matching the deployed
//!   BarterCast's 2-hop maxflow that limits the leverage of false reports;
//! * [`cache`] — incremental memoization of `f_{j→i}` with epoch-based,
//!   fine-grained invalidation (proven equivalent to recomputation by
//!   differential tests);
//! * [`protocol`] — the record-exchange gossip ([`BarterCast`]);
//! * [`experience`] — the threshold experience function
//!   `E_i(j) ⇔ f_{j→i} ≥ T` plus the adaptive-threshold variant sketched in
//!   the paper's discussion (§VII).

pub mod cache;
pub mod experience;
pub mod graph;
pub mod maxflow;
pub mod protocol;
pub mod validate;

pub use experience::{AdaptiveThreshold, ThresholdExperience};
pub use graph::SubjectiveGraph;
pub use protocol::{BarterCast, BarterCastConfig, Record};
pub use validate::validate_records;
