//! Hostile-input gate for inbound BarterCast record lists.
//!
//! A record list is the wire message of a BarterCast exchange: the
//! sender's claimed direct-transfer totals. The graph layer already
//! refuses edges not incident to the reporter; this gate rejects the
//! whole message *before* any edge is installed — with an attributable
//! reason — when it is structurally hostile. Total and pure: never
//! panics, first violation (in a fixed check order) wins.

use crate::protocol::Record;
use rvs_guard::RejectReason;
use rvs_sim::NodeId;
use std::collections::BTreeSet;

/// Validate an inbound record list from `reporter`: at most `max_len`
/// records, endpoints inside the population (`max_id`, exclusive), no
/// self-loops, every record incident to the reporter (first-hand only —
/// BarterCast never forwards hearsay), claimed KiB within `max_kib`,
/// and each directed edge reported at most once.
pub fn validate_records(
    recs: &[Record],
    reporter: NodeId,
    max_len: usize,
    max_id: usize,
    max_kib: u64,
) -> Result<(), RejectReason> {
    if recs.len() > max_len {
        return Err(RejectReason::ListTooLong);
    }
    let mut seen = BTreeSet::new();
    for r in recs {
        if r.from.index() >= max_id || r.to.index() >= max_id {
            return Err(RejectReason::InvalidNode);
        }
        if r.from == r.to {
            return Err(RejectReason::SelfReference);
        }
        if r.from != reporter && r.to != reporter {
            return Err(RejectReason::HearsayRecord);
        }
        if r.kib > max_kib {
            return Err(RejectReason::Oversized);
        }
        if !seen.insert((r.from, r.to)) {
            return Err(RejectReason::DuplicateEntry);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: NodeId = NodeId(3);

    fn rec(from: u32, to: u32, kib: u64) -> Record {
        Record {
            from: NodeId(from),
            to: NodeId(to),
            kib,
        }
    }

    fn check(recs: &[Record]) -> Result<(), RejectReason> {
        validate_records(recs, R, 50, 10, 1 << 20)
    }

    #[test]
    fn honest_records_are_accepted() {
        // Both directions incident to the reporter, distinct edges.
        let recs = [rec(3, 1, 100), rec(2, 3, 50), rec(3, 2, 7)];
        assert_eq!(check(&recs), Ok(()));
        assert_eq!(check(&[]), Ok(()));
    }

    #[test]
    fn overlong_list_is_rejected() {
        let recs: Vec<Record> = (0..51).map(|_| rec(3, 1, 1)).collect();
        assert_eq!(check(&recs), Err(RejectReason::ListTooLong));
    }

    #[test]
    fn out_of_population_endpoint_is_rejected() {
        assert_eq!(check(&[rec(3, 10, 1)]), Err(RejectReason::InvalidNode));
        assert_eq!(check(&[rec(10, 3, 1)]), Err(RejectReason::InvalidNode));
    }

    #[test]
    fn self_loop_is_rejected() {
        assert_eq!(check(&[rec(3, 3, 1)]), Err(RejectReason::SelfReference));
    }

    #[test]
    fn hearsay_is_rejected() {
        assert_eq!(check(&[rec(1, 2, 1)]), Err(RejectReason::HearsayRecord));
    }

    #[test]
    fn inflated_kib_is_rejected() {
        assert_eq!(
            check(&[rec(3, 1, (1 << 20) + 1)]),
            Err(RejectReason::Oversized)
        );
    }

    #[test]
    fn duplicate_edge_is_rejected() {
        assert_eq!(
            check(&[rec(3, 1, 5), rec(3, 1, 9)]),
            Err(RejectReason::DuplicateEntry)
        );
    }
}
