//! Incremental contribution caching.
//!
//! Every experience check `E_i(j)` needs the contribution `f_{j→i}` — a
//! hop-bounded maxflow over `i`'s subjective graph — and the surrounding
//! system asks for the same `(i, j)` pairs over and over: each gossip round
//! re-gates vote lists, each observer sample sweeps the contribution
//! matrix. Most of those queries hit a graph that has not changed since the
//! last identical query, so the flow value is memoized per `(i, j)` pair.
//!
//! Invalidation is *lazy* and driven by the graph's mutation epoch (see
//! [`SubjectiveGraph::epoch`]): a cache never has to be told about writes,
//! it reconciles with the graph at the next read. Reconciliation has three
//! tiers, cheapest first:
//!
//! 1. **Epoch match** — graph untouched since the last read: every entry is
//!    still exact.
//! 2. **Fine-grained replay** (2-hop configurations) — the graph's bounded
//!    change log still covers the gap, and the deployed 2-hop closed form
//!    `f_{j→i} = w(j,i) + Σ_x min(w(j,x), w(x,i))` depends only on edges
//!    *out of* `j` and *into* `i`. Because weights are max-accumulated they
//!    are monotone, so an edge weight that is zero *now* was zero at every
//!    instant the log covers — which licenses two sharp rules for a changed
//!    edge `(a → b)`:
//!    * `b ≠ i`: only `f_{a→i}` can move, and only through the relay term
//!      `min(w(a,b), w(b,i))` — evict entry `a` iff `w(b,i) > 0`;
//!    * `b = i`: evict entry `a` (direct term) plus every cached `j` with
//!      `w(j,a) > 0` (relay through `a`); peers that never uploaded to `a`
//!      keep their entries.
//!
//!    An exchange that installs a few edges evicts a few entries instead of
//!    the whole cache.
//! 3. **Full flush** — the log was truncated, or the hop bound exceeds 2 (a
//!    changed edge anywhere can then appear in some ≤`h`-hop path): drop
//!    every entry for the node.
//!
//! The fine-grained rule is deliberately conservative for hop bounds 0 and
//! 1 (their dependency sets are subsets of the 2-hop one), so tier 2 is
//! sound for every `max_hops ≤ 2`. Correctness of the whole scheme — cached
//! results byte-identical to cache-free recomputation under arbitrary
//! mutation/query interleavings — is enforced by differential proptests
//! (`crates/bartercast/tests/proptests.rs`, `tests/cache_differential.rs`)
//! and by the scenario auditor's sampled coherence invariant.

use crate::graph::SubjectiveGraph;
use rvs_sim::NodeId;
use std::collections::BTreeMap;

/// Memoized contributions towards one evaluator node.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeCache {
    /// Graph epoch the surviving entries were last reconciled against.
    seen_epoch: u64,
    /// `j → f_{j→i}` in KiB, exact as of `seen_epoch`.
    entries: BTreeMap<NodeId, u64>,
}

/// What a [`ContributionCache::lookup`] found.
pub(crate) enum Lookup {
    /// The cached flow value, exact for the graph's current epoch.
    Hit(u64),
    /// No valid entry; the caller must compute and [`ContributionCache::store`].
    Miss,
}

/// Per-node memoization of `f_{j→i}` with epoch-based invalidation.
#[derive(Debug, Clone, Default)]
pub(crate) struct ContributionCache {
    nodes: Vec<NodeCache>,
}

impl ContributionCache {
    /// A cache for a population of `n` evaluator nodes.
    pub(crate) fn new(n: usize) -> Self {
        ContributionCache {
            nodes: vec![NodeCache::default(); n],
        }
    }

    /// Reconcile node `i`'s entries with its graph's current epoch,
    /// evicting exactly the entries whose value may have changed.
    pub(crate) fn reconcile(&mut self, i: NodeId, graph: &SubjectiveGraph, max_hops: usize) {
        let cache = &mut self.nodes[i.index()];
        let epoch = graph.epoch();
        if cache.seen_epoch == epoch {
            return;
        }
        match graph
            .changes_since(cache.seen_epoch)
            .filter(|_| max_hops <= 2)
        {
            Some(changes) => {
                for (a, b) in changes {
                    if b == i {
                        // An edge into the evaluator feeds the direct term
                        // of `f_{a→i}` and the relay term `min(w(j,a),
                        // w(a,i))` of every `j` that uploaded to `a`. With
                        // max-accumulated (hence monotone) weights, a `j`
                        // with `w(j,a) = 0` *now* had no such term at any
                        // point the log covers, so it keeps its entry.
                        cache
                            .entries
                            .retain(|&j, _| j != a && graph.edge_kib(j, a) == 0);
                    } else {
                        // Only `f_{a→i}` sees this edge, through the relay
                        // term `min(w(a,b), w(b,i))` — which is identically
                        // zero (before and after, by monotonicity) unless
                        // `b` has uploaded to the evaluator.
                        if graph.edge_kib(b, i) > 0 {
                            cache.entries.remove(&a);
                        }
                    }
                }
            }
            // Log truncated, or hops > 2 (a changed edge can then sit
            // mid-path anywhere): drop everything.
            None => cache.entries.clear(),
        }
        cache.seen_epoch = epoch;
    }

    /// Look up `f_{j→i}`. Only meaningful directly after
    /// [`reconcile`](Self::reconcile) for the same `i`.
    pub(crate) fn lookup(&self, i: NodeId, j: NodeId) -> Lookup {
        match self.nodes[i.index()].entries.get(&j) {
            Some(&kib) => Lookup::Hit(kib),
            None => Lookup::Miss,
        }
    }

    /// Record a freshly computed `f_{j→i}`.
    pub(crate) fn store(&mut self, i: NodeId, j: NodeId, kib: u64) {
        self.nodes[i.index()].entries.insert(j, kib);
    }

    /// The surviving `(j, f_{j→i})` entries for node `i`. Exact only after
    /// a [`reconcile`](Self::reconcile) at the graph's current epoch —
    /// which is what the scenario auditor's coherence sampling relies on.
    pub(crate) fn entries(&self, i: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.nodes[i.index()]
            .entries
            .iter()
            .map(|(&j, &kib)| (j, kib))
    }

    /// Number of cached entries for node `i` (diagnostics).
    pub(crate) fn len(&self, i: NodeId) -> usize {
        self.nodes[i.index()].entries.len()
    }
}

/// Stable binary encoding: reconciled epoch, then the memoized entries.
impl rvs_checkpoint::Persist for NodeCache {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.seen_epoch);
        self.entries.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(NodeCache {
            seen_epoch: dec.u64()?,
            entries: BTreeMap::restore(dec)?,
        })
    }
}

/// Stable binary encoding: one [`NodeCache`] per evaluator node, in node
/// order. Persisted verbatim so cache hit/miss behaviour — and therefore the
/// maxflow-evaluation counters — resumes byte-identically.
impl rvs_checkpoint::Persist for ContributionCache {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.nodes.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ContributionCache {
            nodes: Vec::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32, u64)]) -> SubjectiveGraph {
        let mut g = SubjectiveGraph::new();
        for &(f, t, w) in edges {
            assert!(g.insert_report(NodeId(f), NodeId(f), NodeId(t), w));
        }
        g
    }

    #[test]
    fn unchanged_epoch_keeps_entries() {
        let g = graph(&[(2, 1, 100)]);
        let mut c = ContributionCache::new(4);
        c.reconcile(NodeId(1), &g, 2);
        c.store(NodeId(1), NodeId(2), 100);
        c.reconcile(NodeId(1), &g, 2);
        assert!(matches!(c.lookup(NodeId(1), NodeId(2)), Lookup::Hit(100)));
    }

    #[test]
    fn edge_into_evaluator_evicts_direct_and_relaying_sources() {
        // 2 has uploaded to 4, 3 has not; then a new edge 4 → 1 arrives.
        let mut g = graph(&[(2, 1, 100), (2, 4, 30), (3, 1, 10)]);
        let mut c = ContributionCache::new(6);
        c.reconcile(NodeId(1), &g, 2);
        c.store(NodeId(1), NodeId(2), 130);
        c.store(NodeId(1), NodeId(3), 10);
        c.store(NodeId(1), NodeId(4), 0);
        g.insert_report(NodeId(4), NodeId(4), NodeId(1), 50);
        c.reconcile(NodeId(1), &g, 2);
        // 4 itself (direct term) and 2 (relay via 4) are stale; 3 never
        // uploaded to 4, so its flow cannot have moved.
        assert!(matches!(c.lookup(NodeId(1), NodeId(4)), Lookup::Miss));
        assert!(matches!(c.lookup(NodeId(1), NodeId(2)), Lookup::Miss));
        assert!(matches!(c.lookup(NodeId(1), NodeId(3)), Lookup::Hit(10)));
    }

    #[test]
    fn unrelated_edge_evicts_only_its_source() {
        let mut g = graph(&[(2, 1, 100), (3, 1, 10)]);
        let mut c = ContributionCache::new(6);
        c.reconcile(NodeId(1), &g, 2);
        c.store(NodeId(1), NodeId(2), 100);
        c.store(NodeId(1), NodeId(3), 10);
        c.store(NodeId(1), NodeId(5), 0);
        // 5 → 3 does not touch node 1 directly, but 3 relays to 1:
        // only j = 5 is affected.
        g.insert_report(NodeId(5), NodeId(5), NodeId(3), 77);
        c.reconcile(NodeId(1), &g, 2);
        assert!(matches!(c.lookup(NodeId(1), NodeId(2)), Lookup::Hit(100)));
        assert!(matches!(c.lookup(NodeId(1), NodeId(3)), Lookup::Hit(10)));
        assert!(matches!(c.lookup(NodeId(1), NodeId(5)), Lookup::Miss));
    }

    #[test]
    fn edge_to_non_relaying_peer_evicts_nothing() {
        let mut g = graph(&[(2, 1, 100)]);
        let mut c = ContributionCache::new(6);
        c.reconcile(NodeId(1), &g, 2);
        c.store(NodeId(1), NodeId(2), 100);
        c.store(NodeId(1), NodeId(5), 0);
        // 5 → 4 where 4 never uploaded to 1: no ≤2-hop path to the
        // evaluator gained capacity, every entry stays exact.
        g.insert_report(NodeId(5), NodeId(5), NodeId(4), 77);
        c.reconcile(NodeId(1), &g, 2);
        assert!(matches!(c.lookup(NodeId(1), NodeId(2)), Lookup::Hit(100)));
        assert!(matches!(c.lookup(NodeId(1), NodeId(5)), Lookup::Hit(0)));
    }

    #[test]
    fn three_hop_config_always_flushes_on_change() {
        let mut g = graph(&[(2, 1, 100)]);
        let mut c = ContributionCache::new(8);
        c.reconcile(NodeId(1), &g, 3);
        c.store(NodeId(1), NodeId(2), 100);
        g.insert_report(NodeId(6), NodeId(6), NodeId(7), 1);
        c.reconcile(NodeId(1), &g, 3);
        assert_eq!(c.len(NodeId(1)), 0);
    }

    #[test]
    fn truncated_log_flushes() {
        let mut g = graph(&[(2, 1, 100)]);
        let mut c = ContributionCache::new(4);
        c.reconcile(NodeId(1), &g, 2);
        c.store(NodeId(1), NodeId(2), 100);
        // Blow well past the change-log capacity with edges that would
        // individually be harmless to pair (1, 2).
        for k in 0..600u64 {
            g.insert_report(NodeId(3), NodeId(3), NodeId(2), k + 1);
        }
        c.reconcile(NodeId(1), &g, 2);
        assert_eq!(c.len(NodeId(1)), 0);
    }
}
