//! The experience function `E` (paper §V-B) and the adaptive-threshold
//! refinement sketched in §VII.
//!
//! > "we apply a simple threshold value T over the contribution function
//! > f_{j→i}. Hence node i considers node j to be experienced where
//! > E_i(j) = true iff f_{j→i} ≥ T."
//!
//! The paper selects `T = 5 MB` from trace simulations (Figure 5) and
//! proposes, as future work, adapting `T` endogenously: raise it when the
//! dispersion of incoming votes exceeds `D_max` (likely attack), lower it
//! when votes agree. [`AdaptiveThreshold`] implements that sketch and is
//! evaluated by the `ablation_adaptive_t` experiment.

use crate::protocol::BarterCast;
use rvs_sim::NodeId;
use serde::{Deserialize, Serialize};

/// The paper's fixed-threshold experience function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdExperience {
    /// Threshold in MiB (paper: 5 MB).
    pub t_mib: f64,
}

impl ThresholdExperience {
    /// The paper's selected operating point, `T = 5` MB.
    pub const PAPER_DEFAULT: ThresholdExperience = ThresholdExperience { t_mib: 5.0 };

    /// A threshold of `t_mib` MiB.
    pub fn new(t_mib: f64) -> Self {
        ThresholdExperience { t_mib }
    }

    /// `E_i(j)`: does `i` consider `j` experienced?
    pub fn is_experienced(&self, bc: &BarterCast, i: NodeId, j: NodeId) -> bool {
        bc.contribution_mib(i, j) >= self.t_mib
    }

    /// `E_i(j)` for a whole batch of peers at once. Reconciles `i`'s
    /// contribution cache a single time, so a round's worth of gating
    /// checks against one evaluator costs one cache pass plus the misses.
    pub fn experienced_batch(&self, bc: &BarterCast, i: NodeId, peers: &[NodeId]) -> Vec<bool> {
        bc.contributions_mib(i, peers)
            .into_iter()
            .map(|f| f >= self.t_mib)
            .collect()
    }
}

/// Adaptive threshold (paper §VII): per-node `T` steered by the dispersion
/// of incoming votes.
///
/// > "We could choose a maximum dispersion level of opinion in votes,
/// > D_max, above which we increase T. If incoming votes result in an
/// > increase in the dispersion level and take it above D_max, the value of
/// > T is increased and vice versa."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveThreshold {
    /// Current threshold in MiB.
    pub t_mib: f64,
    /// Lower clamp (the paper suggests starting from `T = 0`).
    pub t_min_mib: f64,
    /// Upper clamp, bounding how exclusive the core can become.
    pub t_max_mib: f64,
    /// Additive step when dispersion exceeds `D_max`.
    pub raise_mib: f64,
    /// Additive step when dispersion is back below `D_max`.
    ///
    /// Deliberately much smaller than `raise_mib`: with a symmetric step
    /// the guard oscillates — once suspicious votes are purged, dispersion
    /// drops, `T` falls straight back and the attacker floods in again.
    /// Raising fast and decaying slowly breaks that cycle (see the
    /// `ablation_adaptive_t` experiment).
    pub decay_mib: f64,
    /// Dispersion level above which `T` is raised.
    pub d_max: f64,
}

impl Default for AdaptiveThreshold {
    fn default() -> Self {
        AdaptiveThreshold {
            t_mib: 0.0,
            t_min_mib: 0.0,
            t_max_mib: 50.0,
            raise_mib: 1.0,
            decay_mib: 0.05,
            d_max: 0.2,
        }
    }
}

/// Stable binary encoding: the six `f64` fields in declaration order, each
/// as IEEE bits.
impl rvs_checkpoint::Persist for AdaptiveThreshold {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.f64(self.t_mib);
        enc.f64(self.t_min_mib);
        enc.f64(self.t_max_mib);
        enc.f64(self.raise_mib);
        enc.f64(self.decay_mib);
        enc.f64(self.d_max);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(AdaptiveThreshold {
            t_mib: dec.f64()?,
            t_min_mib: dec.f64()?,
            t_max_mib: dec.f64()?,
            raise_mib: dec.f64()?,
            decay_mib: dec.f64()?,
            d_max: dec.f64()?,
        })
    }
}

impl AdaptiveThreshold {
    /// The paper's literal symmetric sketch ("the value of T is increased
    /// and vice versa") — kept for the ablation's comparison; oscillates
    /// under sustained attack.
    pub fn symmetric(step_mib: f64) -> Self {
        AdaptiveThreshold {
            raise_mib: step_mib,
            decay_mib: step_mib,
            ..Default::default()
        }
    }

    /// `E_i(j)` under the current adaptive threshold.
    pub fn is_experienced(&self, bc: &BarterCast, i: NodeId, j: NodeId) -> bool {
        bc.contribution_mib(i, j) >= self.t_mib
    }

    /// Batched `E_i(j)` under the current adaptive threshold (single cache
    /// reconciliation, like [`ThresholdExperience::experienced_batch`]).
    pub fn experienced_batch(&self, bc: &BarterCast, i: NodeId, peers: &[NodeId]) -> Vec<bool> {
        bc.contributions_mib(i, peers)
            .into_iter()
            .map(|f| f >= self.t_mib)
            .collect()
    }

    /// Feed one dispersion observation `d ∈ [0, 1]` (e.g. the fraction of
    /// moderators whose incoming votes conflict). Raises `T` by
    /// `raise_mib` when `d > D_max`, lowers it by `decay_mib` otherwise,
    /// clamped to `[t_min, t_max]`.
    pub fn observe_dispersion(&mut self, d: f64) {
        if d > self.d_max {
            self.t_mib += self.raise_mib;
        } else {
            self.t_mib -= self.decay_mib;
        }
        self.t_mib = self.t_mib.clamp(self.t_min_mib, self.t_max_mib);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BarterCastConfig;
    use rvs_bittorrent::TransferLedger;

    fn bc_with_upload(kib: u64) -> BarterCast {
        let mut l = TransferLedger::new();
        l.credit(NodeId(2), NodeId(1), kib);
        let mut bc = BarterCast::new(3, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        bc
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        let bc = bc_with_upload(5 * 1024);
        let e = ThresholdExperience::PAPER_DEFAULT;
        assert!(e.is_experienced(&bc, NodeId(1), NodeId(2)));
        let bc_less = bc_with_upload(5 * 1024 - 1);
        assert!(!e.is_experienced(&bc_less, NodeId(1), NodeId(2)));
    }

    #[test]
    fn experience_is_asymmetric() {
        // 2 uploaded to 1; 1 never uploaded to 2.
        let mut l = TransferLedger::new();
        l.credit(NodeId(2), NodeId(1), 10 * 1024);
        let mut bc = BarterCast::new(3, BarterCastConfig::default());
        bc.sync_own_records(NodeId(1), &l);
        bc.sync_own_records(NodeId(2), &l);
        let e = ThresholdExperience::PAPER_DEFAULT;
        assert!(e.is_experienced(&bc, NodeId(1), NodeId(2)));
        assert!(!e.is_experienced(&bc, NodeId(2), NodeId(1)));
    }

    #[test]
    fn zero_threshold_accepts_anyone_known() {
        let bc = bc_with_upload(1);
        let e = ThresholdExperience::new(0.0);
        assert!(e.is_experienced(&bc, NodeId(1), NodeId(2)));
        // Even a node with no contribution passes at T=0.
        assert!(e.is_experienced(&bc, NodeId(1), NodeId(0)));
    }

    #[test]
    fn batch_gating_agrees_with_single_checks() {
        let bc = bc_with_upload(7 * 1024);
        let e = ThresholdExperience::PAPER_DEFAULT;
        let peers = [NodeId(0), NodeId(2)];
        let batch = e.experienced_batch(&bc, NodeId(1), &peers);
        assert_eq!(batch.len(), 2);
        for (k, &j) in peers.iter().enumerate() {
            assert_eq!(batch[k], e.is_experienced(&bc, NodeId(1), j));
        }
        let a = AdaptiveThreshold {
            t_mib: 5.0,
            ..Default::default()
        };
        let adaptive_batch = a.experienced_batch(&bc, NodeId(1), &peers);
        for (k, &j) in peers.iter().enumerate() {
            assert_eq!(adaptive_batch[k], a.is_experienced(&bc, NodeId(1), j));
        }
    }

    #[test]
    fn adaptive_raises_on_high_dispersion() {
        let mut a = AdaptiveThreshold::default();
        for _ in 0..5 {
            a.observe_dispersion(0.9);
        }
        assert!((a.t_mib - 5.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_lowers_on_agreement_and_clamps() {
        let mut a = AdaptiveThreshold {
            t_mib: 2.0,
            ..Default::default()
        };
        // Decay is deliberately slow: 2 MiB / 0.05 per step = 40 steps.
        for _ in 0..50 {
            a.observe_dispersion(0.0);
        }
        assert_eq!(a.t_mib, a.t_min_mib);
        for _ in 0..1_000 {
            a.observe_dispersion(1.0);
        }
        assert_eq!(a.t_mib, a.t_max_mib);
    }

    #[test]
    fn symmetric_variant_raises_and_decays_equally() {
        let mut a = AdaptiveThreshold::symmetric(1.0);
        a.observe_dispersion(0.9);
        a.observe_dispersion(0.9);
        assert!((a.t_mib - 2.0).abs() < 1e-9);
        a.observe_dispersion(0.0);
        a.observe_dispersion(0.0);
        assert_eq!(a.t_mib, 0.0);
    }

    #[test]
    fn adaptive_gates_by_current_threshold() {
        let bc = bc_with_upload(3 * 1024); // 3 MiB contribution
        let mut a = AdaptiveThreshold::default(); // T = 0
        assert!(a.is_experienced(&bc, NodeId(1), NodeId(2)));
        for _ in 0..4 {
            a.observe_dispersion(1.0); // T climbs to 4
        }
        assert!(!a.is_experienced(&bc, NodeId(1), NodeId(2)));
    }
}
