//! Hop-bounded Edmonds–Karp maxflow over a subjective graph.
//!
//! Deployed BarterCast computes the contribution of `j` towards `i` as the
//! maximum flow from `j` to `i` in `i`'s subjective graph, with augmenting
//! paths restricted to a small hop count (2 in Tribler). The hop bound is
//! what blunts false-report attacks: a colluding clique can fabricate
//! arbitrarily heavy edges *among its own members*, but any flow towards an
//! honest evaluator must still cross genuine edges adjacent to honest
//! nodes, and with at most two hops there is little room to route around
//! that constraint.

use crate::graph::SubjectiveGraph;
use rvs_sim::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// Maximum flow from `src` to `dst` using augmenting paths of at most
/// `max_hops` edges. Returns KiB of flow.
///
/// `max_hops = usize::MAX` degenerates to ordinary Edmonds–Karp.
pub fn max_flow_bounded(graph: &SubjectiveGraph, src: NodeId, dst: NodeId, max_hops: usize) -> u64 {
    if src == dst || max_hops == 0 {
        return 0;
    }
    if max_hops == 1 {
        return graph.edge_kib(src, dst);
    }
    if max_hops == 2 {
        // Closed form: every ≤2-hop path is edge-disjoint from every other
        // (the direct edge, and src→x→dst for distinct x), so the maxflow
        // is simply their sum — no augmenting-path search needed. This is
        // the hot path for the deployed 2-hop BarterCast configuration.
        let mut flow = graph.edge_kib(src, dst);
        for (x, cap_out) in graph.out_edges(src) {
            if x == dst {
                continue;
            }
            let cap_in = graph.edge_kib(x, dst);
            flow += cap_out.min(cap_in);
        }
        return flow;
    }
    edmonds_karp_bounded(graph, src, dst, max_hops)
}

/// General hop-bounded Edmonds–Karp (reference path; also exercised against
/// the 2-hop closed form in tests).
pub(crate) fn edmonds_karp_bounded(
    graph: &SubjectiveGraph,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
) -> u64 {
    if src == dst || max_hops == 0 {
        return 0;
    }
    // Residual capacities; reverse edges materialise lazily.
    let mut residual: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (f, t, w) in graph.edges() {
        *residual.entry((f, t)).or_insert(0) += w;
        residual.entry((t, f)).or_insert(0);
        adj.entry(f).or_default().push(t);
        adj.entry(t).or_default().push(f);
    }
    for nbrs in adj.values_mut() {
        nbrs.sort_unstable();
        nbrs.dedup();
    }
    if !adj.contains_key(&src) || !adj.contains_key(&dst) {
        return 0;
    }

    let mut total = 0u64;
    loop {
        // BFS for the shortest augmenting path within the hop budget.
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut depth: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(src);
        depth.insert(src, 0);
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            let d = depth[&u];
            if d == max_hops {
                continue;
            }
            if let Some(nbrs) = adj.get(&u) {
                for &v in nbrs {
                    if depth.contains_key(&v) {
                        continue;
                    }
                    if residual.get(&(u, v)).copied().unwrap_or(0) == 0 {
                        continue;
                    }
                    depth.insert(v, d + 1);
                    parent.insert(v, u);
                    if v == dst {
                        found = true;
                        break;
                    }
                    queue.push_back(v);
                }
            }
            if found {
                break;
            }
        }
        if !found {
            return total;
        }
        // Bottleneck along the path. BFS only enqueued `v` with a parent
        // whose residual was positive, so the lookups cannot miss — but a
        // miss must not be a panic path: an inconsistent parent chain
        // terminates the search with the flow found so far instead.
        let mut bottleneck = u64::MAX;
        let mut v = dst;
        while v != src {
            let Some((&u, cap)) = parent
                .get(&v)
                .and_then(|u| residual.get(&(*u, v)).map(|c| (u, *c)))
            else {
                return total;
            };
            bottleneck = bottleneck.min(cap);
            v = u;
        }
        // Augment.
        let mut v = dst;
        while v != src {
            let Some(&u) = parent.get(&v) else {
                return total;
            };
            if let Some(fwd) = residual.get_mut(&(u, v)) {
                *fwd = fwd.saturating_sub(bottleneck);
            }
            *residual.entry((v, u)).or_insert(0) += bottleneck;
            v = u;
        }
        total += bottleneck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(edges: &[(u32, u32, u64)]) -> SubjectiveGraph {
        let mut graph = SubjectiveGraph::new();
        for &(f, t, w) in edges {
            assert!(graph.insert_report(NodeId(f), NodeId(f), NodeId(t), w));
        }
        graph
    }

    #[test]
    fn direct_edge_flows_fully() {
        let graph = g(&[(1, 2, 100)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(2), 2), 100);
    }

    #[test]
    fn no_path_means_zero() {
        let graph = g(&[(1, 2, 100)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(2), NodeId(1), 2), 0);
        assert_eq!(max_flow_bounded(&graph, NodeId(3), NodeId(1), 2), 0);
    }

    #[test]
    fn two_hop_path_is_bottlenecked() {
        // 1 -> 2 -> 3 with capacities 100, 40.
        let graph = g(&[(1, 2, 100), (2, 3, 40)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(3), 2), 40);
    }

    #[test]
    fn hop_limit_excludes_long_paths() {
        // 1 -> 2 -> 3 -> 4: three hops needed.
        let graph = g(&[(1, 2, 100), (2, 3, 100), (3, 4, 100)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(4), 2), 0);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(4), 3), 100);
    }

    #[test]
    fn parallel_paths_add_up() {
        // Two disjoint 2-hop routes from 1 to 4.
        let graph = g(&[(1, 2, 30), (2, 4, 30), (1, 3, 20), (3, 4, 20)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(4), 2), 50);
    }

    #[test]
    fn direct_plus_indirect_combined() {
        let graph = g(&[(1, 4, 10), (1, 2, 25), (2, 4, 25)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(4), 2), 35);
    }

    #[test]
    fn classic_maxflow_with_unbounded_hops() {
        // Diamond with a cross edge; classic max-flow value is 19.
        // s=1, t=6. Edges from CLRS-style example.
        let graph = g(&[
            (1, 2, 10),
            (1, 3, 10),
            (2, 4, 4),
            (2, 5, 8),
            (3, 5, 9),
            (5, 4, 6),
            (4, 6, 10),
            (5, 6, 10),
        ]);
        assert_eq!(
            max_flow_bounded(&graph, NodeId(1), NodeId(6), usize::MAX),
            19
        );
    }

    #[test]
    fn fabricated_clique_cannot_push_flow_without_real_edges() {
        // Colluders 10, 11, 12 report huge transfers among themselves, but
        // none of them ever uploaded to honest node 1. Flow to node 1 is 0.
        let graph = g(&[
            (10, 11, 1_000_000),
            (11, 12, 1_000_000),
            (12, 10, 1_000_000),
        ]);
        for c in [10, 11, 12] {
            assert_eq!(max_flow_bounded(&graph, NodeId(c), NodeId(1), 2), 0);
        }
    }

    #[test]
    fn mole_leverage_is_bounded_by_real_edge() {
        // Mole 2 really uploaded 5 KiB to honest 1. Colluder 3 claims a
        // gigantic upload to the mole. Colluder's 2-hop flow to 1 is capped
        // by the genuine 5 KiB edge.
        let mut graph = g(&[(2, 1, 5)]);
        assert!(graph.insert_report(NodeId(3), NodeId(3), NodeId(2), 1_000_000));
        assert_eq!(max_flow_bounded(&graph, NodeId(3), NodeId(1), 2), 5);
    }

    #[test]
    fn zero_hop_and_self_flow_are_zero() {
        let graph = g(&[(1, 2, 100)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(2), 0), 0);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(1), 2), 0);
    }

    #[test]
    fn closed_form_matches_edmonds_karp_on_random_graphs() {
        use rvs_sim::DetRng;
        let mut rng = DetRng::new(42);
        for case in 0..200 {
            let n = 2 + rng.index(8) as u32;
            let mut graph = SubjectiveGraph::new();
            let edges = rng.index(20);
            for _ in 0..edges {
                let f = rng.below(n as u64) as u32;
                let t = rng.below(n as u64) as u32;
                if f != t {
                    graph.insert_report(NodeId(f), NodeId(f), NodeId(t), 1 + rng.below(100));
                }
            }
            let s = NodeId(rng.below(n as u64) as u32);
            let d = NodeId(rng.below(n as u64) as u32);
            assert_eq!(
                max_flow_bounded(&graph, s, d, 2),
                edmonds_karp_bounded(&graph, s, d, 2),
                "case {case}: closed form diverges from Edmonds–Karp"
            );
        }
    }

    #[test]
    fn one_hop_is_direct_edge_only() {
        let graph = g(&[(1, 2, 100), (1, 3, 50), (3, 2, 50)]);
        assert_eq!(max_flow_bounded(&graph, NodeId(1), NodeId(2), 1), 100);
    }

    #[test]
    fn reverse_edges_enable_rerouting() {
        // Flow rerouting via residual edges: classic case where a greedy
        // path must be partially undone.
        let graph = g(&[(1, 2, 10), (1, 3, 10), (2, 3, 10), (2, 4, 10), (3, 4, 10)]);
        assert_eq!(
            max_flow_bounded(&graph, NodeId(1), NodeId(4), usize::MAX),
            20
        );
    }
}
