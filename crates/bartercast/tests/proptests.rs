//! Property-based tests for subjective graphs and hop-bounded maxflow.

use proptest::prelude::*;
use rvs_bartercast::maxflow::max_flow_bounded;
use rvs_bartercast::{BarterCast, BarterCastConfig, SubjectiveGraph};
use rvs_bittorrent::TransferLedger;
use rvs_sim::NodeId;

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32, u64)>> {
    prop::collection::vec((0u32..8, 0u32..8, 1u64..10_000), 0..40)
}

fn graph_of(edges: &[(u32, u32, u64)]) -> SubjectiveGraph {
    let mut g = SubjectiveGraph::new();
    for &(f, t, w) in edges {
        if f != t {
            g.insert_report(NodeId(f), NodeId(f), NodeId(t), w);
        }
    }
    g
}

proptest! {
    /// Flow is bounded by source out-capacity and sink in-capacity, and is
    /// monotone in the hop budget.
    #[test]
    fn flow_bounds_and_hop_monotonicity(edges in arb_edges(), s in 0u32..8, d in 0u32..8) {
        let g = graph_of(&edges);
        let src = NodeId(s);
        let dst = NodeId(d);
        let out_cap: u64 = g.out_edges(src).iter().map(|&(_, w)| w).sum();
        let in_cap: u64 = g
            .edges()
            .filter(|&(_, t, _)| t == dst)
            .map(|(_, _, w)| w)
            .sum();
        let mut prev = 0u64;
        for hops in 0..5 {
            let f = max_flow_bounded(&g, src, dst, hops);
            prop_assert!(f >= prev, "flow must grow with hop budget");
            prop_assert!(f <= out_cap);
            prop_assert!(f <= in_cap);
            prev = f;
        }
        prop_assert_eq!(max_flow_bounded(&g, src, src, 4), 0);
    }

    /// Adding an edge never decreases any flow (monotonicity in capacity).
    #[test]
    fn flow_monotone_in_edges(
        edges in arb_edges(),
        extra in (0u32..8, 0u32..8, 1u64..10_000),
        s in 0u32..8,
        d in 0u32..8,
    ) {
        let g1 = graph_of(&edges);
        let mut with_extra = edges.clone();
        with_extra.push(extra);
        let g2 = graph_of(&with_extra);
        for hops in [2usize, 3] {
            prop_assert!(
                max_flow_bounded(&g2, NodeId(s), NodeId(d), hops)
                    >= max_flow_bounded(&g1, NodeId(s), NodeId(d), hops)
            );
        }
    }

    /// Honest record exchange only ever adds knowledge, and contribution
    /// estimates never exceed ground truth when everyone is honest.
    #[test]
    fn honest_exchanges_stay_within_ground_truth(
        transfers in prop::collection::vec((0u32..6, 0u32..6, 1u64..5_000), 0..30),
        meetings in prop::collection::vec((0u32..6, 0u32..6), 0..20),
    ) {
        let mut ledger = TransferLedger::new();
        for &(f, t, k) in &transfers {
            ledger.credit(NodeId(f), NodeId(t), k);
        }
        let mut bc = BarterCast::new(6, BarterCastConfig::default());
        for i in 0..6 {
            bc.sync_own_records(NodeId(i), &ledger);
        }
        for &(a, b) in &meetings {
            bc.exchange(NodeId(a), NodeId(b));
        }
        // Subjective edges never exceed the ledger's ground truth.
        for i in 0..6u32 {
            for (f, t, w) in bc.graph(NodeId(i)).edges() {
                prop_assert!(w <= ledger.uploaded_kib(f, t),
                    "node {i} believes {f}->{t} = {w} > truth");
            }
        }
        // Contributions are bounded by the contributor's total uploads.
        for i in 0..6u32 {
            for j in 0..6u32 {
                if i == j { continue; }
                let f = bc.contribution_kib(NodeId(i), NodeId(j));
                prop_assert!(f <= ledger.total_uploaded_kib(NodeId(j)));
            }
        }
    }

    /// Differential test of the incremental contribution cache: a cached
    /// `BarterCast` and a cache-disabled twin fed byte-identical interleaved
    /// mutations (ledger credits, own-record syncs, exchanges, injected
    /// reports) must answer every contribution and experience query
    /// byte-identically, at every point of the interleaving. This is the
    /// cache analogue of `closed_form_matches_edmonds_karp_on_random_graphs`:
    /// the uncached twin is the executable specification.
    #[test]
    fn cached_and_uncached_twins_agree_on_everything(
        ops in prop::collection::vec((0u8..6, 0u32..6, 0u32..6, 0u32..6, 1u64..20_000), 1..80),
        hops in 1usize..4,
    ) {
        use rvs_bartercast::{Record, ThresholdExperience};
        let cfg = BarterCastConfig {
            max_hops: hops,
            ..BarterCastConfig::default()
        };
        let mut cached = BarterCast::new(6, cfg);
        let mut plain = BarterCast::new(6, cfg.without_cache());
        let mut ledger = TransferLedger::new();
        let e = ThresholdExperience::new(1.0);
        for &(op, a, b, c, kib) in &ops {
            let (x, y, z) = (NodeId(a), NodeId(b), NodeId(c));
            match op {
                0 => ledger.credit(x, y, kib),
                1 => {
                    cached.sync_own_records(x, &ledger);
                    plain.sync_own_records(x, &ledger);
                }
                2 => {
                    cached.exchange(x, y);
                    plain.exchange(x, y);
                }
                3 => {
                    // Possibly fabricated record from reporter `y`.
                    let rec = Record { from: y, to: z, kib };
                    let lhs = cached.inject_report(x, y, rec);
                    let rhs = plain.inject_report(x, y, rec);
                    prop_assert_eq!(lhs, rhs);
                }
                4 => {
                    prop_assert_eq!(
                        cached.contribution_kib(x, y),
                        plain.contribution_kib(x, y),
                        "f_{{{}->{}}} diverged", y, x
                    );
                    prop_assert_eq!(
                        cached.contribution_mib(x, y).to_bits(),
                        plain.contribution_mib(x, y).to_bits(),
                        "MiB conversion diverged for ({}, {})", x, y
                    );
                }
                _ => {
                    prop_assert_eq!(
                        e.is_experienced(&cached, x, y),
                        e.is_experienced(&plain, x, y)
                    );
                }
            }
        }
        // Closing sweep: every pair, single and batched, plus the
        // cache-free oracle.
        let peers: Vec<NodeId> = (0..6).map(NodeId).collect();
        for &i in &peers {
            let batch = cached.contributions_kib(i, &peers);
            for (k, &j) in peers.iter().enumerate() {
                let reference = plain.contribution_kib(i, j);
                prop_assert_eq!(batch[k], reference);
                prop_assert_eq!(cached.contribution_kib(i, j), reference);
                prop_assert_eq!(cached.contribution_kib_uncached(i, j), reference);
            }
            prop_assert_eq!(cached.graph(i), plain.graph(i), "graph {} diverged", i);
        }
    }

    /// More meetings never reduce a contribution estimate (knowledge is
    /// monotone for honest populations).
    #[test]
    fn knowledge_is_monotone(
        transfers in prop::collection::vec((0u32..5, 0u32..5, 1u64..5_000), 1..20),
        meetings in prop::collection::vec((0u32..5, 0u32..5), 1..15),
    ) {
        let mut ledger = TransferLedger::new();
        for &(f, t, k) in &transfers {
            ledger.credit(NodeId(f), NodeId(t), k);
        }
        let mut bc = BarterCast::new(5, BarterCastConfig::default());
        for i in 0..5 {
            bc.sync_own_records(NodeId(i), &ledger);
        }
        let before = bc.contribution_kib(NodeId(0), NodeId(1));
        for &(a, b) in &meetings {
            bc.exchange(NodeId(a), NodeId(b));
        }
        prop_assert!(bc.contribution_kib(NodeId(0), NodeId(1)) >= before);
    }
}
