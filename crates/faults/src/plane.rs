//! The runtime fault plane: per-send fate decisions and partition state.

use std::collections::BTreeSet;

use crate::config::FaultConfig;
use rvs_sim::{DetRng, NodeId, SimDuration};
use rvs_telemetry::FaultCounters;

/// The fate the plane assigns to one protocol send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Lost to the independent (Bernoulli) loss rate.
    DropIndependent,
    /// Lost while the Gilbert–Elliott channel was in the bad state.
    DropBurst,
    /// Cut by an active partition between sender and receiver.
    DropPartitioned,
    /// Delivered after `delay`; `duplicate_delay` is `Some` when the
    /// duplication fault also spawns a second copy with its own latency.
    Deliver {
        /// One-way latency for the primary copy (zero means the caller may
        /// deliver synchronously, preserving the legacy inline path).
        delay: SimDuration,
        /// Latency of the duplicate copy, if one was spawned.
        duplicate_delay: Option<SimDuration>,
    },
}

/// One side of a named network cut. While `active`, no message may cross
/// between `members` and the rest of the population.
#[derive(Debug, Clone)]
struct Partition {
    members: BTreeSet<NodeId>,
    active: bool,
}

/// An immutable snapshot of the currently *active* partition member sets,
/// cheap to clone into parallel send jobs. Partition membership only
/// changes between rounds (at fault-schedule events), so a view captured
/// at round start is exact for the whole round.
#[derive(Debug, Clone, Default)]
pub struct PartitionView {
    active_sets: Vec<BTreeSet<NodeId>>,
}

impl PartitionView {
    /// True when any active partition separates `a` from `b` (exactly one
    /// of the two is inside the partition's member set).
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.active_sets
            .iter()
            .any(|members| members.contains(&a) != members.contains(&b))
    }
}

/// Per-sender fault lane: an independent RNG stream plus Gilbert–Elliott
/// channel state, forked from the plane's base stream **keyed by sender
/// id** — never by thread id — so the decide sequence each sender observes
/// is a pure function of `(seed, sender, send index)` and survives any
/// resharding across threads.
#[derive(Debug, Clone)]
pub struct FaultLane {
    rng: DetRng,
    burst_bad: bool,
}

impl FaultLane {
    fn new(base: &DetRng, sender: usize) -> FaultLane {
        FaultLane {
            rng: base.fork(sender as u64),
            burst_bad: false,
        }
    }

    /// Decide the fate of one send from `a` to `b`, consuming draws from
    /// this lane in the fixed order documented on [`FaultPlane`]. Drops
    /// attributed to the plane (`partitioned`, `dropped_burst`) and
    /// scheduling effects (`delayed`, `duplicated`) are counted into
    /// `counters`; independent-loss drops are counted by the caller in the
    /// encounter block, where the legacy `message_loss` knob has always
    /// lived.
    pub fn decide(
        &mut self,
        cfg: &FaultConfig,
        view: &PartitionView,
        counters: &mut FaultCounters,
        a: NodeId,
        b: NodeId,
    ) -> SendOutcome {
        if view.partitioned(a, b) {
            counters.partitioned += 1;
            return SendOutcome::DropPartitioned;
        }
        // rvs-lint: allow(rng-branch) -- guard depends only on immutable config (the documented zero-draws-when-inert contract), so draw order is fixed per run
        if cfg.loss > 0.0 && self.rng.chance(cfg.loss) {
            return SendOutcome::DropIndependent;
        }
        if let Some(burst) = cfg.burst {
            if self.burst_bad {
                if self.rng.chance(burst.p_exit_bad) {
                    self.burst_bad = false;
                }
            } else if self.rng.chance(burst.p_enter_bad) {
                self.burst_bad = true;
            }
            let p_loss = if self.burst_bad {
                burst.loss_bad
            } else {
                burst.loss_good
            };
            // rvs-lint: allow(rng-branch) -- guard reads config-derived loss rates; burst-state draws above already ran, so the stream position is deterministic
            if p_loss > 0.0 && self.rng.chance(p_loss) {
                counters.dropped_burst += 1;
                return SendOutcome::DropBurst;
            }
        }
        let delay = self.draw_latency(cfg);
        if !delay.is_zero() {
            counters.delayed += 1;
        }
        // rvs-lint: allow(rng-branch) -- guard depends only on immutable config, same zero-draws-when-inert contract as the loss gate
        let duplicate_delay = if cfg.duplicate > 0.0 && self.rng.chance(cfg.duplicate) {
            counters.duplicated += 1;
            Some(self.draw_latency(cfg))
        } else {
            None
        };
        SendOutcome::Deliver {
            delay,
            duplicate_delay,
        }
    }

    /// One latency draw: `base · uniform[1 − spread, 1 + spread]` ms,
    /// consuming a draw only when both base and spread are non-zero.
    fn draw_latency(&mut self, cfg: &FaultConfig) -> SimDuration {
        let base = cfg.base_latency_ms;
        if base == 0 {
            return SimDuration::from_millis(0);
        }
        if cfg.jitter_spread <= 0.0 {
            return SimDuration::from_millis(base);
        }
        let ms = self.rng.jitter(base as f64, cfg.jitter_spread);
        // rvs-lint: allow(float-total-order) -- jitter is base·uniform over a finite range, so the clamp never sees NaN
        SimDuration::from_millis(ms.max(0.0).round() as u64)
    }
}

/// The fault plane: owns per-sender fault lanes (each a dedicated fork of
/// the run seed, so enabling faults never perturbs protocol RNG streams),
/// active partitions, and the [`FaultCounters`] telemetry block.
///
/// Determinism contract: [`FaultPlane::decide`] consumes RNG draws from the
/// *sender's* lane in a fixed, documented order — partition check (no
/// draw), independent loss (one draw iff `0 < loss < 1`), burst-channel
/// transition + loss draws (only when burst is configured), latency draw
/// (iff `base_latency_ms > 0` and `jitter_spread > 0`), duplication draw
/// (iff `0 < duplicate < 1`, plus a latency draw for the copy). With an
/// inert config a lane consumes **zero** draws, which is what keeps
/// zero-fault runs byte-identical to runs without the plane. Because each
/// sender has its own lane, the parallel round engine can move lanes into
/// send jobs ([`FaultPlane::take_lanes`]) without changing any sender's
/// decide stream.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    lane_base: DetRng,
    lanes: Vec<FaultLane>,
    partitions: Vec<Partition>,
    view: PartitionView,
    counters: FaultCounters,
}

impl FaultPlane {
    /// Build a plane from a config and its dedicated RNG fork. Lanes are
    /// grown lazily as senders appear (lane `i` is always `base.fork(i)`).
    pub fn new(cfg: FaultConfig, lane_base: DetRng) -> FaultPlane {
        FaultPlane {
            cfg,
            lane_base,
            lanes: Vec::new(),
            partitions: Vec::new(),
            view: PartitionView::default(),
            counters: FaultCounters::default(),
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The plane's telemetry block (merged into run snapshots).
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Mutable access for counters incremented by the host (`retries`,
    /// `backoff_gaveups`, `crash_restarts`, `reordered`, `dedup_suppressed`,
    /// `dropped_expired` — events only the delivery loop can observe), and
    /// for merging per-shard counter deltas back after a parallel round.
    pub fn counters_mut(&mut self) -> &mut FaultCounters {
        &mut self.counters
    }

    /// Register a named partition side (initially inactive); returns its
    /// index for later [`FaultPlane::set_partition_active`] calls.
    pub fn add_partition(&mut self, members: impl IntoIterator<Item = NodeId>) -> usize {
        self.partitions.push(Partition {
            members: members.into_iter().collect(),
            active: false,
        });
        self.rebuild_view();
        self.partitions.len() - 1
    }

    /// Activate (cut) or deactivate (heal) a registered partition.
    pub fn set_partition_active(&mut self, idx: usize, active: bool) {
        if let Some(p) = self.partitions.get_mut(idx) {
            p.active = active;
        }
        self.rebuild_view();
    }

    fn rebuild_view(&mut self) {
        self.view = PartitionView {
            active_sets: self
                .partitions
                .iter()
                .filter(|p| p.active)
                .map(|p| p.members.clone())
                .collect(),
        };
    }

    /// True when any active partition separates `a` from `b`.
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.view.partitioned(a, b)
    }

    /// A cloneable snapshot of the active partition sets, for send jobs.
    pub fn partition_view(&self) -> PartitionView {
        self.view.clone()
    }

    /// Whether any sender's Gilbert–Elliott channel is in the bad state.
    pub fn burst_bad(&self) -> bool {
        self.lanes.iter().any(|lane| lane.burst_bad)
    }

    /// Make sure lanes `0..n` exist (lane `i` is derived as `base.fork(i)`
    /// the first time sender `i` appears, so growth order cannot matter).
    pub fn ensure_lanes(&mut self, n: usize) {
        while self.lanes.len() < n {
            let lane = FaultLane::new(&self.lane_base, self.lanes.len());
            self.lanes.push(lane);
        }
    }

    /// Move all lanes out for a parallel send phase. The caller must hand
    /// every lane back via [`FaultPlane::restore_lanes`] in sender order;
    /// a decide while lanes are lent out would mint a fresh lane and
    /// corrupt the sender's stream, so don't do that.
    pub fn take_lanes(&mut self) -> Vec<FaultLane> {
        std::mem::take(&mut self.lanes)
    }

    /// Hand lanes back after a parallel send phase (in sender order).
    pub fn restore_lanes(&mut self, lanes: Vec<FaultLane>) {
        self.lanes = lanes;
    }

    /// Decide the fate of one send from `a` to `b`, consuming draws from
    /// `a`'s lane. See the type-level determinism contract.
    pub fn decide(&mut self, a: NodeId, b: NodeId) -> SendOutcome {
        self.ensure_lanes(a.index() + 1);
        let FaultPlane {
            cfg,
            lanes,
            view,
            counters,
            ..
        } = self;
        lanes[a.index()].decide(cfg, view, counters, a, b)
    }
}

/// Stable binary encoding: lane RNG state then the Gilbert–Elliott channel
/// state bit.
impl rvs_checkpoint::Persist for FaultLane {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.rng.persist(enc);
        enc.bool(self.burst_bad);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(FaultLane {
            rng: DetRng::restore(dec)?,
            burst_bad: dec.bool()?,
        })
    }
}

/// Stable binary encoding: one discriminant byte, then (for `Deliver`) the
/// primary delay and optional duplicate delay. Used as the body of the
/// cross-shard bus envelopes (`rvs-shard`), so the discriminant values are
/// part of the checkpoint wire format — changing them bumps
/// `rvs_checkpoint::FORMAT_VERSION`.
impl rvs_checkpoint::Persist for SendOutcome {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        match self {
            SendOutcome::DropIndependent => enc.u8(0),
            SendOutcome::DropBurst => enc.u8(1),
            SendOutcome::DropPartitioned => enc.u8(2),
            SendOutcome::Deliver {
                delay,
                duplicate_delay,
            } => {
                enc.u8(3);
                delay.persist(enc);
                duplicate_delay.persist(enc);
            }
        }
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(match dec.u8()? {
            0 => SendOutcome::DropIndependent,
            1 => SendOutcome::DropBurst,
            2 => SendOutcome::DropPartitioned,
            3 => SendOutcome::Deliver {
                delay: SimDuration::restore(dec)?,
                duplicate_delay: Option::restore(dec)?,
            },
            other => {
                return Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                    "unknown SendOutcome discriminant {other}"
                )))
            }
        })
    }
}

/// Stable binary encoding: member set then the active flag.
impl rvs_checkpoint::Persist for Partition {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.members.persist(enc);
        enc.bool(self.active);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Partition {
            members: BTreeSet::restore(dec)?,
            active: dec.bool()?,
        })
    }
}

/// Stable binary encoding: config, lane-base RNG, lanes, partitions,
/// counters. The [`PartitionView`] is volatile by design — it is a pure
/// projection of the partitions, rebuilt on restore.
// rvs-lint: allow(persist-coverage) -- `view` is a pure projection of `partitions`, rebuilt by restore below; persisting it would store the same data twice
impl rvs_checkpoint::Persist for FaultPlane {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.cfg.persist(enc);
        self.lane_base.persist(enc);
        self.lanes.persist(enc);
        self.partitions.persist(enc);
        self.counters.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let mut plane = FaultPlane {
            cfg: FaultConfig::restore(dec)?,
            lane_base: DetRng::restore(dec)?,
            lanes: Vec::restore(dec)?,
            partitions: Vec::restore(dec)?,
            view: PartitionView::default(),
            counters: FaultCounters::restore(dec)?,
        };
        plane.rebuild_view();
        Ok(plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BurstLoss;

    fn plane(cfg: FaultConfig) -> FaultPlane {
        FaultPlane::new(cfg, DetRng::new(42).fork(5))
    }

    #[test]
    fn inert_plane_always_delivers_synchronously_with_zero_draws() {
        let mut p = plane(FaultConfig::default());
        for i in 0..100u32 {
            let got = p.decide(NodeId(i % 7), NodeId((i + 1) % 7));
            assert_eq!(
                got,
                SendOutcome::Deliver {
                    delay: SimDuration::from_millis(0),
                    duplicate_delay: None
                }
            );
        }
        // Every sender lane's stream is untouched: each produces the same
        // next value as a fresh per-sender fork that never decided anything.
        for sender in 0..7u64 {
            let mut witness = DetRng::new(42).fork(5).fork(sender);
            assert_eq!(
                p.lanes[sender as usize].rng.next_f64(),
                witness.next_f64(),
                "lane {sender} consumed draws while inert"
            );
        }
        assert_eq!(p.counters().total(), 0);
    }

    #[test]
    fn lanes_are_keyed_by_sender_id_not_creation_order() {
        // Growing lanes in different orders must yield identical streams:
        // lane i is always base.fork(i).
        let cfg = FaultConfig {
            base_latency_ms: 500,
            jitter_spread: 0.5,
            ..FaultConfig::default()
        };
        let mut early = plane(cfg);
        early.ensure_lanes(9); // all lanes up front
        let mut lazy = plane(cfg);
        let seq = |p: &mut FaultPlane| -> Vec<SendOutcome> {
            (0..200u32)
                .map(|i| p.decide(NodeId(i % 9), NodeId((i + 4) % 9)))
                .collect()
        };
        assert_eq!(seq(&mut early), seq(&mut lazy));
    }

    #[test]
    fn taken_lanes_decide_identically_to_the_plane() {
        // The parallel send phase moves lanes out, decides, and restores
        // them; the outcome stream must match in-plane decides exactly.
        let cfg = FaultConfig {
            base_latency_ms: 500,
            jitter_spread: 0.5,
            loss: 0.1,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.2, 5.0)),
            retry: None,
        };
        let mut in_plane = plane(cfg);
        let a: Vec<SendOutcome> = (0..300u32)
            .map(|i| in_plane.decide(NodeId(i % 5), NodeId((i + 1) % 5)))
            .collect();

        let mut lent = plane(cfg);
        lent.ensure_lanes(5);
        let view = lent.partition_view();
        let mut lanes = lent.take_lanes();
        let mut counters = FaultCounters::default();
        let b: Vec<SendOutcome> = (0..300u32)
            .map(|i| {
                let s = (i % 5) as usize;
                lanes[s].decide(
                    &cfg,
                    &view,
                    &mut counters,
                    NodeId(i % 5),
                    NodeId((i + 1) % 5),
                )
            })
            .collect();
        lent.restore_lanes(lanes);
        assert_eq!(a, b);
        lent.counters_mut().merge_from(&counters);
        assert_eq!(
            in_plane.counters().total(),
            lent.counters().total(),
            "merged lane counters must match in-plane counting"
        );
    }

    #[test]
    fn partition_cuts_exactly_cross_traffic() {
        let mut p = plane(FaultConfig::default());
        let idx = p.add_partition([NodeId(0), NodeId(1)]);
        assert!(!p.partitioned(NodeId(0), NodeId(2)));
        p.set_partition_active(idx, true);
        assert!(p.partitioned(NodeId(0), NodeId(2)));
        assert!(p.partitioned(NodeId(2), NodeId(1)));
        // Same side: inside-inside and outside-outside both pass.
        assert!(!p.partitioned(NodeId(0), NodeId(1)));
        assert!(!p.partitioned(NodeId(2), NodeId(3)));
        assert_eq!(p.decide(NodeId(0), NodeId(2)), SendOutcome::DropPartitioned);
        assert_eq!(p.counters().partitioned, 1);
        p.set_partition_active(idx, false);
        assert!(!p.partitioned(NodeId(0), NodeId(2)));
        // The cloneable view agrees with the plane at each toggle.
        p.set_partition_active(idx, true);
        assert!(p.partition_view().partitioned(NodeId(0), NodeId(2)));
    }

    #[test]
    fn burst_loss_hits_approximately_its_stationary_rate() {
        let cfg = FaultConfig {
            burst: Some(BurstLoss::with_overall_loss(0.3, 8.0)),
            ..FaultConfig::default()
        };
        let mut p = plane(cfg);
        let n = 20_000u64;
        let mut lost = 0u64;
        for _ in 0..n {
            if p.decide(NodeId(0), NodeId(1)) == SendOutcome::DropBurst {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "burst loss rate {rate} too far from 0.3"
        );
        assert_eq!(p.counters().dropped_burst, lost);
    }

    #[test]
    fn latency_jitter_stays_within_spread_and_counts_delayed() {
        let cfg = FaultConfig {
            base_latency_ms: 1_000,
            jitter_spread: 1.0,
            ..FaultConfig::default()
        };
        let mut p = plane(cfg);
        let mut max_seen = 0u64;
        for _ in 0..2_000 {
            match p.decide(NodeId(0), NodeId(1)) {
                SendOutcome::Deliver { delay, .. } => {
                    let ms = delay.as_millis();
                    assert!(ms <= 2_000, "latency {ms} exceeds 2x mean");
                    max_seen = max_seen.max(ms);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // With spread 1.0 the top of the range should actually be reached.
        assert!(max_seen > 1_800, "jitter never approached 2x mean");
        assert!(p.counters().delayed > 1_900);
    }

    #[test]
    fn duplication_spawns_copies_at_about_the_configured_rate() {
        let cfg = FaultConfig {
            duplicate: 0.05,
            ..FaultConfig::default()
        };
        let mut p = plane(cfg);
        let mut dups = 0u64;
        for _ in 0..20_000 {
            if let SendOutcome::Deliver {
                duplicate_delay: Some(_),
                ..
            } = p.decide(NodeId(0), NodeId(1))
            {
                dups += 1;
            }
        }
        let rate = dups as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "duplicate rate {rate}");
        assert_eq!(p.counters().duplicated, dups);
    }

    #[test]
    fn decide_sequence_is_replayable() {
        let cfg = FaultConfig {
            base_latency_ms: 500,
            jitter_spread: 0.5,
            loss: 0.1,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.2, 5.0)),
            retry: None,
        };
        let run = |mut p: FaultPlane| -> Vec<SendOutcome> {
            (0..500u32)
                .map(|i| p.decide(NodeId(i % 9), NodeId((i + 3) % 9)))
                .collect()
        };
        assert_eq!(run(plane(cfg)), run(plane(cfg)));
    }
}
