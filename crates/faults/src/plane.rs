//! The runtime fault plane: per-send fate decisions and partition state.

use std::collections::BTreeSet;

use crate::config::FaultConfig;
use rvs_sim::{DetRng, NodeId, SimDuration};
use rvs_telemetry::FaultCounters;

/// The fate the plane assigns to one protocol send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Lost to the independent (Bernoulli) loss rate.
    DropIndependent,
    /// Lost while the Gilbert–Elliott channel was in the bad state.
    DropBurst,
    /// Cut by an active partition between sender and receiver.
    DropPartitioned,
    /// Delivered after `delay`; `duplicate_delay` is `Some` when the
    /// duplication fault also spawns a second copy with its own latency.
    Deliver {
        /// One-way latency for the primary copy (zero means the caller may
        /// deliver synchronously, preserving the legacy inline path).
        delay: SimDuration,
        /// Latency of the duplicate copy, if one was spawned.
        duplicate_delay: Option<SimDuration>,
    },
}

/// One side of a named network cut. While `active`, no message may cross
/// between `members` and the rest of the population.
#[derive(Debug, Clone)]
struct Partition {
    members: BTreeSet<NodeId>,
    active: bool,
}

/// The fault plane: owns the fault RNG stream (a dedicated fork of the run
/// seed, so enabling faults never perturbs protocol RNG streams), the
/// Gilbert–Elliott channel state, active partitions, and the
/// [`FaultCounters`] telemetry block.
///
/// Determinism contract: [`FaultPlane::decide`] consumes RNG draws in a
/// fixed, documented order — partition check (no draw), independent loss
/// (one draw iff `0 < loss < 1`), burst-channel transition + loss draws
/// (only when burst is configured), latency draw (iff `base_latency_ms > 0`
/// and `jitter_spread > 0`), duplication draw (iff `0 < duplicate < 1`,
/// plus a latency draw for the copy). With an inert config it consumes
/// **zero** draws, which is what keeps zero-fault runs byte-identical to
/// runs without the plane.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    rng: DetRng,
    burst_bad: bool,
    partitions: Vec<Partition>,
    counters: FaultCounters,
}

impl FaultPlane {
    /// Build a plane from a config and its dedicated RNG fork.
    pub fn new(cfg: FaultConfig, rng: DetRng) -> FaultPlane {
        FaultPlane {
            cfg,
            rng,
            burst_bad: false,
            partitions: Vec::new(),
            counters: FaultCounters::default(),
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The plane's telemetry block (merged into run snapshots).
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Mutable access for counters incremented by the host (`retries`,
    /// `backoff_gaveups`, `crash_restarts`, `reordered`, `dedup_suppressed`,
    /// `dropped_expired` — events only the delivery loop can observe).
    pub fn counters_mut(&mut self) -> &mut FaultCounters {
        &mut self.counters
    }

    /// Register a named partition side (initially inactive); returns its
    /// index for later [`FaultPlane::set_partition_active`] calls.
    pub fn add_partition(&mut self, members: impl IntoIterator<Item = NodeId>) -> usize {
        self.partitions.push(Partition {
            members: members.into_iter().collect(),
            active: false,
        });
        self.partitions.len() - 1
    }

    /// Activate (cut) or deactivate (heal) a registered partition.
    pub fn set_partition_active(&mut self, idx: usize, active: bool) {
        if let Some(p) = self.partitions.get_mut(idx) {
            p.active = active;
        }
    }

    /// True when any active partition separates `a` from `b` (exactly one
    /// of the two is inside the partition's member set).
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitions
            .iter()
            .any(|p| p.active && (p.members.contains(&a) != p.members.contains(&b)))
    }

    /// Whether the Gilbert–Elliott channel is currently in the bad state.
    pub fn burst_bad(&self) -> bool {
        self.burst_bad
    }

    /// Decide the fate of one send from `a` to `b`, consuming RNG draws in
    /// the fixed order documented on the type. Drops attributed to the
    /// plane (`partitioned`, `dropped_burst`) and scheduling effects
    /// (`delayed`, `duplicated`) are counted here; independent-loss drops
    /// are counted by the caller in the encounter block, where the legacy
    /// `message_loss` knob has always lived.
    pub fn decide(&mut self, a: NodeId, b: NodeId) -> SendOutcome {
        if self.partitioned(a, b) {
            self.counters.partitioned += 1;
            return SendOutcome::DropPartitioned;
        }
        if self.cfg.loss > 0.0 && self.rng.chance(self.cfg.loss) {
            return SendOutcome::DropIndependent;
        }
        if let Some(burst) = self.cfg.burst {
            if self.burst_bad {
                if self.rng.chance(burst.p_exit_bad) {
                    self.burst_bad = false;
                }
            } else if self.rng.chance(burst.p_enter_bad) {
                self.burst_bad = true;
            }
            let p_loss = if self.burst_bad {
                burst.loss_bad
            } else {
                burst.loss_good
            };
            if p_loss > 0.0 && self.rng.chance(p_loss) {
                self.counters.dropped_burst += 1;
                return SendOutcome::DropBurst;
            }
        }
        let delay = self.draw_latency();
        if !delay.is_zero() {
            self.counters.delayed += 1;
        }
        let duplicate_delay = if self.cfg.duplicate > 0.0 && self.rng.chance(self.cfg.duplicate) {
            self.counters.duplicated += 1;
            Some(self.draw_latency())
        } else {
            None
        };
        SendOutcome::Deliver {
            delay,
            duplicate_delay,
        }
    }

    /// One latency draw: `base · uniform[1 − spread, 1 + spread]` ms,
    /// consuming a draw only when both base and spread are non-zero.
    fn draw_latency(&mut self) -> SimDuration {
        let base = self.cfg.base_latency_ms;
        if base == 0 {
            return SimDuration::from_millis(0);
        }
        if self.cfg.jitter_spread <= 0.0 {
            return SimDuration::from_millis(base);
        }
        let ms = self.rng.jitter(base as f64, self.cfg.jitter_spread);
        SimDuration::from_millis(ms.max(0.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BurstLoss;

    fn plane(cfg: FaultConfig) -> FaultPlane {
        FaultPlane::new(cfg, DetRng::new(42).fork(5))
    }

    #[test]
    fn inert_plane_always_delivers_synchronously_with_zero_draws() {
        let mut p = plane(FaultConfig::default());
        let mut witness = DetRng::new(42).fork(5);
        for i in 0..100u32 {
            let got = p.decide(NodeId(i % 7), NodeId((i + 1) % 7));
            assert_eq!(
                got,
                SendOutcome::Deliver {
                    delay: SimDuration::from_millis(0),
                    duplicate_delay: None
                }
            );
        }
        // The plane's stream is untouched: it produces the same next value
        // as a fresh fork that never decided anything.
        assert_eq!(p.rng.next_f64(), witness.next_f64());
        assert_eq!(p.counters().total(), 0);
    }

    #[test]
    fn partition_cuts_exactly_cross_traffic() {
        let mut p = plane(FaultConfig::default());
        let idx = p.add_partition([NodeId(0), NodeId(1)]);
        assert!(!p.partitioned(NodeId(0), NodeId(2)));
        p.set_partition_active(idx, true);
        assert!(p.partitioned(NodeId(0), NodeId(2)));
        assert!(p.partitioned(NodeId(2), NodeId(1)));
        // Same side: inside-inside and outside-outside both pass.
        assert!(!p.partitioned(NodeId(0), NodeId(1)));
        assert!(!p.partitioned(NodeId(2), NodeId(3)));
        assert_eq!(p.decide(NodeId(0), NodeId(2)), SendOutcome::DropPartitioned);
        assert_eq!(p.counters().partitioned, 1);
        p.set_partition_active(idx, false);
        assert!(!p.partitioned(NodeId(0), NodeId(2)));
    }

    #[test]
    fn burst_loss_hits_approximately_its_stationary_rate() {
        let cfg = FaultConfig {
            burst: Some(BurstLoss::with_overall_loss(0.3, 8.0)),
            ..FaultConfig::default()
        };
        let mut p = plane(cfg);
        let n = 20_000u64;
        let mut lost = 0u64;
        for _ in 0..n {
            if p.decide(NodeId(0), NodeId(1)) == SendOutcome::DropBurst {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.05,
            "burst loss rate {rate} too far from 0.3"
        );
        assert_eq!(p.counters().dropped_burst, lost);
    }

    #[test]
    fn latency_jitter_stays_within_spread_and_counts_delayed() {
        let cfg = FaultConfig {
            base_latency_ms: 1_000,
            jitter_spread: 1.0,
            ..FaultConfig::default()
        };
        let mut p = plane(cfg);
        let mut max_seen = 0u64;
        for _ in 0..2_000 {
            match p.decide(NodeId(0), NodeId(1)) {
                SendOutcome::Deliver { delay, .. } => {
                    let ms = delay.as_millis();
                    assert!(ms <= 2_000, "latency {ms} exceeds 2x mean");
                    max_seen = max_seen.max(ms);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // With spread 1.0 the top of the range should actually be reached.
        assert!(max_seen > 1_800, "jitter never approached 2x mean");
        assert!(p.counters().delayed > 1_900);
    }

    #[test]
    fn duplication_spawns_copies_at_about_the_configured_rate() {
        let cfg = FaultConfig {
            duplicate: 0.05,
            ..FaultConfig::default()
        };
        let mut p = plane(cfg);
        let mut dups = 0u64;
        for _ in 0..20_000 {
            if let SendOutcome::Deliver {
                duplicate_delay: Some(_),
                ..
            } = p.decide(NodeId(0), NodeId(1))
            {
                dups += 1;
            }
        }
        let rate = dups as f64 / 20_000.0;
        assert!((rate - 0.05).abs() < 0.01, "duplicate rate {rate}");
        assert_eq!(p.counters().duplicated, dups);
    }

    #[test]
    fn decide_sequence_is_replayable() {
        let cfg = FaultConfig {
            base_latency_ms: 500,
            jitter_spread: 0.5,
            loss: 0.1,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.2, 5.0)),
            retry: None,
        };
        let run = |mut p: FaultPlane| -> Vec<SendOutcome> {
            (0..500u32)
                .map(|i| p.decide(NodeId(i % 9), NodeId((i + 3) % 9)))
                .collect()
        };
        assert_eq!(run(plane(cfg)), run(plane(cfg)));
    }
}
