//! Deterministic fault injection between protocol send and receive.
//!
//! The paper evaluates robustness only against *protocol-level* adversaries
//! (spam moderators, vote flooding); the network underneath is ideal. This
//! crate supplies the missing half: a fault plane that sits between a
//! protocol send and its receive and — driven entirely by a seeded
//! [`rvs_sim::DetRng`] stream — delays, reorders, duplicates, and drops
//! messages, cuts named partitions, and crash-restarts nodes.
//!
//! Everything is deterministic in the schedule plus the run seed: the same
//! [`FaultSchedule`] against the same seed replays byte-identically, which
//! is what lets chaos runs be regression-tested at all.
//!
//! * [`FaultConfig`] — link-level parameters (latency, jitter, independent
//!   loss, Gilbert–Elliott burst loss, duplication, retry/backoff).
//! * [`FaultSchedule`] — a serializable scenario: config plus named
//!   partition windows and crash-restart events (`rvs run --faults FILE`).
//! * [`FaultPlane`] — the runtime: per-send fate decisions
//!   ([`FaultPlane::decide`]) and partition state, owning the
//!   [`rvs_telemetry::FaultCounters`] block.
//! * [`Backoff`] — capped exponential backoff state for protocol retries
//!   (VoxPopuli bootstrap requests, encounter resends).

mod config;
mod plane;
mod retry;
mod schedule;

pub use config::{BurstLoss, FaultConfig, RetryConfig};
pub use plane::{FaultLane, FaultPlane, PartitionView, SendOutcome};
pub use retry::{Backoff, BackoffDecision};
pub use schedule::{CrashSpec, FaultSchedule, PartitionSpec};
