//! Capped exponential backoff state for protocol-level retries.

use crate::config::RetryConfig;
use rvs_sim::SimTime;

/// What a failed attempt means for the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffDecision {
    /// Retry is allowed once `Backoff::ready` next returns true.
    Retry,
    /// The attempt budget is exhausted; the message (or bootstrap round) is
    /// abandoned and the backoff resets with a cooldown of `backoff_cap` so
    /// the caller can try again later rather than wedging forever.
    GaveUp,
}

/// Per-actor backoff state: how many attempts the current round has used
/// and the earliest time the next attempt may go out.
///
/// Attempts count from 1 (the initial send); `on_failure` after attempt
/// `max_attempts` reports [`BackoffDecision::GaveUp`] and starts a fresh
/// round after a cap-length cooldown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Backoff {
    attempts: u32,
    next_allowed: SimTime,
}

impl Backoff {
    /// Fresh state: an attempt is allowed immediately.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// True when the next attempt may be sent at `now`.
    pub fn ready(&self, now: SimTime) -> bool {
        now >= self.next_allowed
    }

    /// Attempts used in the current round (0 = none yet).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Record that an attempt went out at `now`; the next one is gated by
    /// the capped exponential delay for the following attempt number.
    pub fn on_attempt(&mut self, now: SimTime, cfg: &RetryConfig) {
        self.attempts = self.attempts.saturating_add(1);
        self.next_allowed = now.saturating_add(cfg.backoff_delay(self.attempts + 1));
    }

    /// Record that the current round succeeded: state resets so the next
    /// round (if ever needed) starts immediately.
    pub fn on_success(&mut self) {
        *self = Backoff::default();
    }

    /// Record that the in-flight attempt failed. Returns whether the caller
    /// should keep retrying (after the already-scheduled delay) or has
    /// exhausted the round; in the latter case the state resets with a
    /// cap-length cooldown from `now`.
    pub fn on_failure(&mut self, now: SimTime, cfg: &RetryConfig) -> BackoffDecision {
        if self.attempts >= cfg.max_attempts {
            self.attempts = 0;
            self.next_allowed = now.saturating_add(cfg.backoff_cap);
            BackoffDecision::GaveUp
        } else {
            BackoffDecision::Retry
        }
    }
}

/// Stable binary encoding: attempts used, then the next-allowed instant.
impl rvs_checkpoint::Persist for Backoff {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u32(self.attempts);
        self.next_allowed.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Backoff {
            attempts: dec.u32()?,
            next_allowed: SimTime::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::SimDuration;

    fn cfg() -> RetryConfig {
        RetryConfig {
            max_attempts: 3,
            backoff_base: SimDuration::from_secs(30),
            backoff_cap: SimDuration::from_mins(8),
        }
    }

    #[test]
    fn ready_immediately_then_gated_by_growing_delay() {
        let cfg = cfg();
        let mut b = Backoff::new();
        let t0 = SimTime::from_secs(100);
        assert!(b.ready(t0));
        b.on_attempt(t0, &cfg);
        // Attempt 2 is gated by backoff_delay(2) = 30 s.
        assert!(!b.ready(t0.saturating_add(SimDuration::from_secs(29))));
        let t1 = t0.saturating_add(SimDuration::from_secs(30));
        assert!(b.ready(t1));
        b.on_attempt(t1, &cfg);
        // Attempt 3 is gated by backoff_delay(3) = 60 s.
        assert!(!b.ready(t1.saturating_add(SimDuration::from_secs(59))));
        assert!(b.ready(t1.saturating_add(SimDuration::from_secs(60))));
    }

    #[test]
    fn gives_up_after_budget_and_cools_down() {
        let cfg = cfg();
        let mut b = Backoff::new();
        let mut now = SimTime::from_secs(0);
        for _ in 0..cfg.max_attempts {
            b.on_attempt(now, &cfg);
            now = now.saturating_add(SimDuration::from_mins(10));
        }
        assert_eq!(b.on_failure(now, &cfg), BackoffDecision::GaveUp);
        // Cooldown: not ready until a full cap elapses.
        assert!(!b.ready(now.saturating_add(SimDuration::from_mins(7))));
        assert!(b.ready(now.saturating_add(SimDuration::from_mins(8))));
        assert_eq!(b.attempts(), 0);
    }

    #[test]
    fn failure_before_budget_keeps_retrying_and_success_resets() {
        let cfg = cfg();
        let mut b = Backoff::new();
        let now = SimTime::from_secs(50);
        b.on_attempt(now, &cfg);
        assert_eq!(b.on_failure(now, &cfg), BackoffDecision::Retry);
        assert_eq!(b.attempts(), 1);
        b.on_success();
        assert_eq!(b, Backoff::new());
        assert!(b.ready(now));
    }
}
