//! Link-level fault parameters.

use rvs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of the fault plane's per-message fate model. The default is
/// fully inert: zero latency, no loss, no duplication, no retry machinery —
/// a system built with it behaves exactly like one with no fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultConfig {
    /// Mean one-way delivery latency in milliseconds. `0` delivers
    /// synchronously (the legacy inline path).
    pub base_latency_ms: u64,
    /// Latency jitter spread in `[0, 1]`: each delivery draws a latency
    /// uniform in `base · [1 − spread, 1 + spread]`. With `spread = 1.0`
    /// latencies range up to 2× the mean — enough for messages sent in one
    /// gossip round to overtake each other.
    pub jitter_spread: f64,
    /// Independent (Bernoulli) loss probability per send. The legacy
    /// `ProtocolConfig::message_loss` knob routes here.
    pub loss: f64,
    /// Probability that a delivered message spawns one duplicate copy
    /// (with its own latency draw). Receivers must dedup by message id.
    pub duplicate: f64,
    /// Gilbert–Elliott burst loss, when modelled.
    pub burst: Option<BurstLoss>,
    /// Retry/backoff machinery, when enabled. `None` (default) keeps the
    /// protocols retry-free, exactly as before this plane existed.
    pub retry: Option<RetryConfig>,
}

impl FaultConfig {
    /// True when every fault feature is off and no latency is modelled.
    pub fn is_inert(&self) -> bool {
        self.base_latency_ms == 0
            // rvs-lint: allow(float-total-order) -- exact-zero inertness probe: a NaN rate reads as active, which is the conservative outcome
            && self.loss == 0.0
            // rvs-lint: allow(float-total-order) -- exact-zero inertness probe, same contract as `loss` above
            && self.duplicate == 0.0
            && self.burst.is_none()
            && self.retry.is_none()
    }
}

/// Gilbert–Elliott two-state burst-loss channel: transitions happen once
/// per send decision, so burst lengths are measured in messages, matching
/// how gossip traffic experiences an outage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// P(good → bad) per send decision.
    pub p_enter_bad: f64,
    /// P(bad → good) per send decision.
    pub p_exit_bad: f64,
    /// Loss probability while the channel is in the good state.
    pub loss_good: f64,
    /// Loss probability while the channel is in the bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// A channel whose long-run loss fraction is approximately `overall`
    /// (bad state loses everything, good state nothing), with mean burst
    /// length `burst_len` messages.
    pub fn with_overall_loss(overall: f64, burst_len: f64) -> BurstLoss {
        let overall = overall.clamp(0.0, 0.95);
        // rvs-lint: allow(float-total-order) -- input sanitizer: IEEE max maps a NaN burst length to the floor of 1.0, exactly the clamp intended
        let burst_len = burst_len.max(1.0);
        let p_exit_bad = 1.0 / burst_len;
        // Stationary P(bad) = p_enter / (p_enter + p_exit) = overall.
        let p_enter_bad = if overall >= 1.0 {
            1.0
        } else {
            p_exit_bad * overall / (1.0 - overall)
        };
        BurstLoss {
            p_enter_bad: p_enter_bad.clamp(0.0, 1.0),
            p_exit_bad,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Long-run fraction of send decisions spent in the bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }
}

/// Retry/backoff parameters, shared by encounter resends and VoxPopuli
/// bootstrap requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Maximum send attempts per logical message (initial send included).
    /// Exceeding it abandons the message and counts a `backoff_gaveups`.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per subsequent attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on any backoff delay (and the cooldown applied after a
    /// give-up, so a bootstrapping node is never wedged forever).
    pub backoff_cap: SimDuration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 3,
            backoff_base: SimDuration::from_secs(30),
            backoff_cap: SimDuration::from_mins(8),
        }
    }
}

impl RetryConfig {
    /// Capped exponential delay before attempt number `attempt` (attempts
    /// count from 1 = initial send; the first retry is attempt 2).
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        let doublings = attempt.saturating_sub(2).min(32);
        let ms = self
            .backoff_base
            .as_millis()
            .saturating_mul(1u64 << doublings);
        SimDuration::from_millis(ms.min(self.backoff_cap.as_millis()))
    }
}

/// Stable binary encoding: fields in declaration order (probabilities as
/// `f64::to_bits`; optional sub-configs via the `Option` encoding).
impl rvs_checkpoint::Persist for FaultConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.base_latency_ms);
        enc.f64(self.jitter_spread);
        enc.f64(self.loss);
        enc.f64(self.duplicate);
        self.burst.persist(enc);
        self.retry.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(FaultConfig {
            base_latency_ms: dec.u64()?,
            jitter_spread: dec.f64()?,
            loss: dec.f64()?,
            duplicate: dec.f64()?,
            burst: Option::restore(dec)?,
            retry: Option::restore(dec)?,
        })
    }
}

/// Stable binary encoding: the four probabilities as `f64::to_bits`.
impl rvs_checkpoint::Persist for BurstLoss {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.f64(self.p_enter_bad);
        enc.f64(self.p_exit_bad);
        enc.f64(self.loss_good);
        enc.f64(self.loss_bad);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(BurstLoss {
            p_enter_bad: dec.f64()?,
            p_exit_bad: dec.f64()?,
            loss_good: dec.f64()?,
            loss_bad: dec.f64()?,
        })
    }
}

/// Stable binary encoding: attempt budget, base delay, cap.
impl rvs_checkpoint::Persist for RetryConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u32(self.max_attempts);
        self.backoff_base.persist(enc);
        self.backoff_cap.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(RetryConfig {
            max_attempts: dec.u32()?,
            backoff_base: SimDuration::restore(dec)?,
            backoff_cap: SimDuration::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        assert!(FaultConfig::default().is_inert());
        let lossy = FaultConfig {
            loss: 0.1,
            ..FaultConfig::default()
        };
        assert!(!lossy.is_inert());
    }

    #[test]
    fn burst_stationary_matches_requested_overall_loss() {
        let b = BurstLoss::with_overall_loss(0.3, 8.0);
        assert!((b.stationary_bad() - 0.3).abs() < 1e-9);
        assert_eq!(b.loss_bad, 1.0);
        assert_eq!(b.loss_good, 0.0);
    }

    #[test]
    fn backoff_delays_double_then_cap() {
        let rc = RetryConfig {
            max_attempts: 6,
            backoff_base: SimDuration::from_secs(30),
            backoff_cap: SimDuration::from_secs(100),
        };
        assert_eq!(rc.backoff_delay(2), SimDuration::from_secs(30));
        assert_eq!(rc.backoff_delay(3), SimDuration::from_secs(60));
        // 120 s exceeds the cap.
        assert_eq!(rc.backoff_delay(4), SimDuration::from_secs(100));
        assert_eq!(rc.backoff_delay(60), SimDuration::from_secs(100));
    }

    #[test]
    fn config_json_roundtrips() {
        let cfg = FaultConfig {
            base_latency_ms: 500,
            jitter_spread: 1.0,
            loss: 0.05,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.3, 10.0)),
            retry: Some(RetryConfig::default()),
        };
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: FaultConfig = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, cfg);
    }
}
