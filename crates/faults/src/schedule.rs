//! Serializable chaos scenarios: fault config plus timed partition and
//! crash-restart events.

use crate::config::{BurstLoss, FaultConfig, RetryConfig};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A named network partition: while active (`start ≤ now < heal`), no
/// message may cross between `members` and the rest of the population.
/// Traffic inside either side is unaffected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// Human-readable name, used in audit messages.
    pub name: String,
    /// Nodes on one side of the cut; everyone else is on the other side.
    pub members: Vec<NodeId>,
    /// When the cut happens.
    pub start: SimTime,
    /// When the partition heals (scheduled heal event).
    pub heal: SimTime,
}

/// A crash-restart fault: at `at`, the node's volatile protocol state
/// (ballot box, VoxPopuli cache, message dedup window, backoff state) is
/// wiped; persistent state (BarterCast graph, signed moderations, PSS
/// view) survives, per the paper's Tribler deployment model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// The node that crashes and immediately restarts.
    pub node: NodeId,
    /// When it happens.
    pub at: SimTime,
}

/// A complete, replayable chaos scenario. Serializable so `rvs run
/// --faults FILE` can load one from JSON; deterministic given the run
/// seed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultSchedule {
    /// Link-level fault parameters.
    pub config: FaultConfig,
    /// Partition windows.
    pub partitions: Vec<PartitionSpec>,
    /// Crash-restart events.
    pub crashes: Vec<CrashSpec>,
}

impl FaultSchedule {
    /// A schedule that injects nothing — the default.
    pub fn inert() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// True when no fault of any kind is configured.
    pub fn is_inert(&self) -> bool {
        self.config.is_inert() && self.partitions.is_empty() && self.crashes.is_empty()
    }

    /// Structural validation: partition windows must be ordered and crash
    /// times finite. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for p in &self.partitions {
            if p.heal < p.start {
                return Err(format!(
                    "partition `{}` heals at {} before it starts at {}",
                    p.name, p.heal, p.start
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.config.loss) {
            return Err(format!("loss {} outside [0, 1]", self.config.loss));
        }
        if !(0.0..=1.0).contains(&self.config.duplicate) {
            return Err(format!(
                "duplicate {} outside [0, 1]",
                self.config.duplicate
            ));
        }
        if !(0.0..=1.0).contains(&self.config.jitter_spread) {
            return Err(format!(
                "jitter_spread {} outside [0, 1]",
                self.config.jitter_spread
            ));
        }
        Ok(())
    }

    /// Parse a schedule from JSON (the `rvs run --faults FILE` format).
    pub fn from_json(s: &str) -> Result<FaultSchedule, String> {
        let schedule: FaultSchedule = serde_json::from_str(s).map_err(|e| e.to_string())?;
        schedule.validate()?;
        Ok(schedule)
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }

    /// A deterministic pseudo-random schedule for property tests: any seed
    /// yields a valid schedule over `n_nodes` nodes within `duration`,
    /// mixing latency, jitter, loss, duplication, burst loss, up to two
    /// partitions, and up to three crash-restarts.
    pub fn random(seed: u64, n_nodes: usize, duration: SimDuration) -> FaultSchedule {
        // rvs-lint: allow(rng-fork-site) -- schedule generator: runs before any simulation exists, so this root cannot perturb an in-run stream
        let mut rng = DetRng::new(seed ^ 0xFA01_75C4_EDB0_1E55);
        let span_ms = duration.as_millis().max(1);
        let config = FaultConfig {
            base_latency_ms: [0, 200, 1_000, 5_000][rng.index(4)],
            jitter_spread: rng.next_f64(),
            loss: 0.4 * rng.next_f64(),
            duplicate: 0.2 * rng.next_f64(),
            burst: rng.chance(0.5).then(|| {
                BurstLoss::with_overall_loss(0.4 * rng.next_f64(), 2.0 + 10.0 * rng.next_f64())
            }),
            retry: rng.chance(0.5).then(RetryConfig::default),
        };
        let mut partitions = Vec::new();
        for k in 0..rng.index(3) {
            if n_nodes < 2 {
                break;
            }
            let side = 1 + rng.index(n_nodes - 1);
            let members: Vec<NodeId> = rng
                .sample_indices(n_nodes, side)
                .into_iter()
                .map(NodeId::from_index)
                .collect();
            let start_ms = rng.below(span_ms);
            let len_ms = rng.below(span_ms / 4 + 1);
            partitions.push(PartitionSpec {
                name: format!("p{k}"),
                members,
                start: SimTime::from_millis(start_ms),
                heal: SimTime::from_millis(start_ms.saturating_add(len_ms)),
            });
        }
        let mut crashes = Vec::new();
        for _ in 0..rng.index(4) {
            if n_nodes == 0 {
                break;
            }
            crashes.push(CrashSpec {
                node: NodeId::from_index(rng.index(n_nodes)),
                at: SimTime::from_millis(rng.below(span_ms)),
            });
        }
        FaultSchedule {
            config,
            partitions,
            crashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_schedule_is_inert() {
        assert!(FaultSchedule::inert().is_inert());
    }

    #[test]
    fn json_roundtrips() {
        let s = FaultSchedule {
            config: FaultConfig {
                loss: 0.1,
                ..FaultConfig::default()
            },
            partitions: vec![PartitionSpec {
                name: "coast".into(),
                members: vec![NodeId(0), NodeId(3)],
                start: SimTime::from_hours(2),
                heal: SimTime::from_hours(6),
            }],
            crashes: vec![CrashSpec {
                node: NodeId(1),
                at: SimTime::from_hours(4),
            }],
        };
        let back = FaultSchedule::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn validation_rejects_inverted_partition_window() {
        let s = FaultSchedule {
            partitions: vec![PartitionSpec {
                name: "bad".into(),
                members: vec![NodeId(0)],
                start: SimTime::from_hours(6),
                heal: SimTime::from_hours(2),
            }],
            ..FaultSchedule::default()
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn random_schedules_are_valid_and_deterministic() {
        for seed in 0..50u64 {
            let a = FaultSchedule::random(seed, 24, SimDuration::from_hours(12));
            let b = FaultSchedule::random(seed, 24, SimDuration::from_hours(12));
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate().expect("random schedule must validate");
            for p in &a.partitions {
                assert!(p.members.iter().all(|n| n.index() < 24));
            }
            for c in &a.crashes {
                assert!(c.node.index() < 24);
            }
        }
    }
}
