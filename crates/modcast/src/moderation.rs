//! The moderation record: signed metadata bound to a moderator.

use crate::sign::{digest, KeyRegistry, Signature};
use rvs_sim::{ModeratorId, SimTime, SwarmId};
use serde::{Deserialize, Serialize};

/// Ground-truth quality of a moderation's metadata. Only the evaluation
/// harness reads this label — protocols never see it (nodes judge
/// moderators through votes, exactly as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentQuality {
    /// Metadata faithfully describes the content.
    Genuine,
    /// Spam: metadata does not reflect the content it is attached to.
    Spam,
}

/// Stable binary encoding: quality as a `u8` discriminant
/// (0 = Genuine, 1 = Spam).
impl rvs_checkpoint::Persist for ContentQuality {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            ContentQuality::Genuine => 0,
            ContentQuality::Spam => 1,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(ContentQuality::Genuine),
            1 => Ok(ContentQuality::Spam),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid ContentQuality discriminant {d}"
            ))),
        }
    }
}

/// Identity of a moderation: `(moderator, seq)` — each moderator numbers
/// its items sequentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModerationId {
    /// The creating moderator.
    pub moderator: ModeratorId,
    /// Per-moderator sequence number.
    pub seq: u32,
}

/// Stable binary encoding: moderator, then the sequence number.
impl rvs_checkpoint::Persist for ModerationId {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.moderator.persist(enc);
        enc.u32(self.seq);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ModerationId {
            moderator: ModeratorId::restore(dec)?,
            seq: dec.u32()?,
        })
    }
}

/// A signed metadata item describing one swarm's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Moderation {
    /// Who created (and signed) this moderation.
    pub moderator: ModeratorId,
    /// Per-moderator sequence number.
    pub seq: u32,
    /// The swarm the metadata describes.
    pub swarm: SwarmId,
    /// Creation time (set by the moderator).
    pub created: SimTime,
    /// Ground-truth quality label (evaluation only).
    pub quality: ContentQuality,
    /// Moderator's signature over all fields above.
    pub sig: Signature,
}

impl Moderation {
    /// Create and sign a moderation.
    pub fn new(
        registry: &KeyRegistry,
        moderator: ModeratorId,
        seq: u32,
        swarm: SwarmId,
        created: SimTime,
        quality: ContentQuality,
    ) -> Self {
        let mut m = Moderation {
            moderator,
            seq,
            swarm,
            created,
            quality,
            sig: Signature(0),
        };
        m.sig = registry.sign(moderator, m.digest());
        m
    }

    /// Digest over the signed fields.
    pub fn digest(&self) -> u64 {
        digest(&[
            self.moderator.0 as u64,
            self.seq as u64,
            self.swarm.0 as u64,
            self.created.as_millis(),
            match self.quality {
                ContentQuality::Genuine => 0,
                ContentQuality::Spam => 1,
            },
        ])
    }

    /// Verify the signature against the PKI.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(self.moderator, self.digest(), self.sig)
    }

    /// The moderation's identity.
    pub fn id(&self) -> ModerationId {
        ModerationId {
            moderator: self.moderator,
            seq: self.seq,
        }
    }
}

/// Stable binary encoding: the six fields in declaration order, signature
/// included verbatim (re-signing on restore would require the registry).
impl rvs_checkpoint::Persist for Moderation {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.moderator.persist(enc);
        enc.u32(self.seq);
        self.swarm.persist(enc);
        self.created.persist(enc);
        self.quality.persist(enc);
        self.sig.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Moderation {
            moderator: ModeratorId::restore(dec)?,
            seq: dec.u32()?,
            swarm: SwarmId::restore(dec)?,
            created: SimTime::restore(dec)?,
            quality: ContentQuality::restore(dec)?,
            sig: Signature::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_sim::NodeId;

    fn registry() -> KeyRegistry {
        KeyRegistry::new(8, 99)
    }

    fn sample(reg: &KeyRegistry) -> Moderation {
        Moderation::new(
            reg,
            NodeId(3),
            0,
            SwarmId(1),
            SimTime::from_hours(2),
            ContentQuality::Genuine,
        )
    }

    #[test]
    fn fresh_moderation_verifies() {
        let reg = registry();
        assert!(sample(&reg).verify(&reg));
    }

    #[test]
    fn altering_any_field_breaks_signature() {
        let reg = registry();
        let m = sample(&reg);
        let mut swapped_swarm = m;
        swapped_swarm.swarm = SwarmId(2);
        assert!(!swapped_swarm.verify(&reg));
        let mut swapped_quality = m;
        swapped_quality.quality = ContentQuality::Spam;
        assert!(!swapped_quality.verify(&reg));
        let mut swapped_seq = m;
        swapped_seq.seq = 7;
        assert!(!swapped_seq.verify(&reg));
    }

    #[test]
    fn identity_theft_fails() {
        let reg = registry();
        let mut m = sample(&reg);
        // Attacker re-attributes the item to another moderator.
        m.moderator = NodeId(5);
        assert!(!m.verify(&reg));
    }

    #[test]
    fn id_combines_moderator_and_seq() {
        let reg = registry();
        let m = sample(&reg);
        assert_eq!(
            m.id(),
            ModerationId {
                moderator: NodeId(3),
                seq: 0
            }
        );
    }
}
