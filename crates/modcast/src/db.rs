//! The per-node `local_db` of moderations plus the local user's votes.
//!
//! Semantics from §IV:
//!
//! * received moderations are stored locally (high availability, no DHT);
//! * the local user may approve (+) or disapprove (−) a *moderator*;
//! * disapproval removes all of the moderator's items and refuses new ones;
//! * `Extract()` — the list offered to a gossip partner — contains only
//!   moderations from approved moderators (or the node's own), selected by
//!   the recency + random policy that [6] found effective;
//! * `Merge()` inserts new moderations, respecting local votes.

use crate::moderation::{Moderation, ModerationId};
use rvs_sim::{DetRng, ModeratorId, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The local user's explicit vote on a moderator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalVote {
    /// Thumbs-up: quality moderator.
    Approve,
    /// Thumbs-down: spam moderator.
    Disapprove,
}

/// Stable binary encoding: vote as a `u8` discriminant
/// (0 = Approve, 1 = Disapprove).
impl rvs_checkpoint::Persist for LocalVote {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            LocalVote::Approve => 0,
            LocalVote::Disapprove => 1,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(LocalVote::Approve),
            1 => Ok(LocalVote::Disapprove),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid LocalVote discriminant {d}"
            ))),
        }
    }
}

/// Selection policy for `Extract()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtractPolicy {
    /// Newest-received first.
    Recency,
    /// Uniformly random.
    Random,
    /// Half newest, half random from the rest (the deployed hybrid).
    RecencyAndRandom,
}

/// Stable binary encoding: policy as a `u8` discriminant
/// (0 = Recency, 1 = Random, 2 = RecencyAndRandom).
impl rvs_checkpoint::Persist for ExtractPolicy {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u8(match self {
            ExtractPolicy::Recency => 0,
            ExtractPolicy::Random => 1,
            ExtractPolicy::RecencyAndRandom => 2,
        });
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        match dec.u8()? {
            0 => Ok(ExtractPolicy::Recency),
            1 => Ok(ExtractPolicy::Random),
            2 => Ok(ExtractPolicy::RecencyAndRandom),
            d => Err(rvs_checkpoint::DecodeError::Corrupt(format!(
                "invalid ExtractPolicy discriminant {d}"
            ))),
        }
    }
}

/// Why (or whether) [`LocalDb::insert`] stored an item. Telemetry needs to
/// tell the approval gate apart from ordinary duplicate suppression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The moderation was stored.
    Stored,
    /// Refused: the local user disapproves of the moderator.
    RefusedByGate,
    /// Already present — gossip redundancy, not a refusal.
    Duplicate,
    /// The database is at capacity with only the node's own items.
    FullOfOwnItems,
}

/// Tally of one [`LocalDb::merge`]: how many offered items were stored and
/// how each refusal broke down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Items newly stored.
    pub stored: usize,
    /// Items refused by the local disapproval gate.
    pub refused_by_gate: usize,
    /// Items already present.
    pub duplicates: usize,
    /// Items dropped because the db held only own items at capacity.
    pub dropped_full: usize,
}

/// One node's moderation database and voting record.
#[derive(Debug, Clone)]
pub struct LocalDb {
    owner: NodeId,
    capacity: usize,
    items: BTreeMap<ModerationId, (Moderation, SimTime)>,
    opinions: BTreeMap<ModeratorId, (LocalVote, SimTime)>,
}

impl LocalDb {
    /// An empty database for `owner` holding at most `capacity` items.
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "local_db capacity must be positive");
        LocalDb {
            owner,
            capacity,
            items: BTreeMap::new(),
            opinions: BTreeMap::new(),
        }
    }

    /// The node this database belongs to.
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Number of stored moderations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no moderations are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The local user's vote on `moderator`, if any.
    pub fn opinion(&self, moderator: ModeratorId) -> Option<LocalVote> {
        self.opinions.get(&moderator).map(|&(v, _)| v)
    }

    /// All local votes as `(moderator, vote, time)`, deterministic order.
    pub fn opinions(&self) -> impl Iterator<Item = (ModeratorId, LocalVote, SimTime)> + '_ {
        self.opinions.iter().map(|(&m, &(v, t))| (m, v, t))
    }

    /// Number of votes the local user has cast.
    pub fn opinion_count(&self) -> usize {
        self.opinions.len()
    }

    /// Record the local user's vote. Disapproval purges the moderator's
    /// items (and blocks future ones). Re-voting replaces the old vote —
    /// a moderator appears at most once.
    pub fn set_opinion(&mut self, moderator: ModeratorId, vote: LocalVote, now: SimTime) {
        self.opinions.insert(moderator, (vote, now));
        if vote == LocalVote::Disapprove {
            self.items.retain(|id, _| id.moderator != moderator);
        }
    }

    /// Does the database hold this moderation?
    pub fn contains(&self, id: ModerationId) -> bool {
        self.items.contains_key(&id)
    }

    /// Does the database hold at least one item from `moderator`?
    pub fn has_items_from(&self, moderator: ModeratorId) -> bool {
        self.items
            .range(
                ModerationId { moderator, seq: 0 }..=ModerationId {
                    moderator,
                    seq: u32::MAX,
                },
            )
            .next()
            .is_some()
    }

    /// Moderators with at least one stored item, ascending.
    pub fn known_moderators(&self) -> Vec<ModeratorId> {
        let mut v: Vec<ModeratorId> = self.items.keys().map(|id| id.moderator).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All stored moderations (deterministic order).
    pub fn items(&self) -> impl Iterator<Item = &Moderation> + '_ {
        self.items.values().map(|(m, _)| m)
    }

    /// Insert one received moderation. Returns `true` if stored. Refused
    /// when the moderator is disapproved or the item is already present.
    /// At capacity, the oldest-received foreign item is evicted; the node's
    /// own moderations are never evicted.
    pub fn insert(&mut self, m: Moderation, received: SimTime) -> bool {
        self.insert_outcome(m, received) == InsertOutcome::Stored
    }

    /// Like [`Self::insert`], reporting *why* an item was refused.
    pub fn insert_outcome(&mut self, m: Moderation, received: SimTime) -> InsertOutcome {
        if self.opinion(m.moderator) == Some(LocalVote::Disapprove) {
            return InsertOutcome::RefusedByGate;
        }
        if self.items.contains_key(&m.id()) {
            return InsertOutcome::Duplicate;
        }
        if self.items.len() >= self.capacity {
            // Evict the oldest-received foreign item.
            let victim = self
                .items
                .iter()
                .filter(|(id, _)| id.moderator != self.owner)
                .min_by_key(|(id, (_, t))| (*t, **id))
                .map(|(id, _)| *id);
            match victim {
                Some(v) => {
                    self.items.remove(&v);
                }
                // Full of own items; drop the arrival.
                None => return InsertOutcome::FullOfOwnItems,
            }
        }
        self.items.insert(m.id(), (m, received));
        InsertOutcome::Stored
    }

    /// Merge a received moderation list (gossip `Merge()`): inserts each
    /// item, respecting local votes. Returns how many were new.
    pub fn merge(&mut self, list: &[Moderation], received: SimTime) -> usize {
        self.merge_counted(list, received).stored
    }

    /// Like [`Self::merge`], with a per-refusal-reason breakdown.
    pub fn merge_counted(&mut self, list: &[Moderation], received: SimTime) -> MergeStats {
        let mut stats = MergeStats::default();
        for m in list {
            match self.insert_outcome(*m, received) {
                InsertOutcome::Stored => stats.stored += 1,
                InsertOutcome::RefusedByGate => stats.refused_by_gate += 1,
                InsertOutcome::Duplicate => stats.duplicates += 1,
                InsertOutcome::FullOfOwnItems => stats.dropped_full += 1,
            }
        }
        stats
    }

    /// Build the moderation list offered to a gossip partner
    /// (`Extract()`): only the node's own moderations and those from
    /// approved moderators are eligible; at most `max` items chosen by
    /// `policy`.
    pub fn extract(&self, max: usize, policy: ExtractPolicy, rng: &mut DetRng) -> Vec<Moderation> {
        let mut eligible: Vec<(&Moderation, SimTime)> = self
            .items
            .values()
            .filter(|(m, _)| {
                m.moderator == self.owner || self.opinion(m.moderator) == Some(LocalVote::Approve)
            })
            .map(|(m, t)| (m, *t))
            .collect();
        if eligible.len() <= max {
            return eligible.into_iter().map(|(m, _)| *m).collect();
        }
        match policy {
            ExtractPolicy::Recency => {
                eligible.sort_by_key(|(m, t)| (std::cmp::Reverse(*t), m.id()));
                eligible.truncate(max);
            }
            ExtractPolicy::Random => {
                let idx = rng.sample_indices(eligible.len(), max);
                eligible = idx.into_iter().map(|i| eligible[i]).collect();
            }
            ExtractPolicy::RecencyAndRandom => {
                eligible.sort_by_key(|(m, t)| (std::cmp::Reverse(*t), m.id()));
                let recent = max / 2;
                let rest_take = max - recent;
                let rest = eligible.split_off(recent);
                let idx = rng.sample_indices(rest.len(), rest_take);
                eligible.extend(idx.into_iter().map(|i| rest[i]));
            }
        }
        eligible.into_iter().map(|(m, _)| *m).collect()
    }
}

/// Stable binary encoding: owner, capacity, stored items, then the local
/// user's opinions. Restore rejects a zero capacity as corrupt rather than
/// tripping the constructor assertion.
impl rvs_checkpoint::Persist for LocalDb {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.owner.persist(enc);
        enc.usize(self.capacity);
        self.items.persist(enc);
        self.opinions.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        let owner = NodeId::restore(dec)?;
        let capacity = dec.usize()?;
        if capacity == 0 {
            return Err(rvs_checkpoint::DecodeError::Corrupt(
                "LocalDb capacity must be positive".to_string(),
            ));
        }
        Ok(LocalDb {
            owner,
            capacity,
            items: BTreeMap::restore(dec)?,
            opinions: BTreeMap::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moderation::ContentQuality;
    use crate::sign::KeyRegistry;
    use rvs_sim::SwarmId;

    fn reg() -> KeyRegistry {
        KeyRegistry::new(16, 7)
    }

    fn item(reg: &KeyRegistry, moderator: u32, seq: u32, t_hours: u64) -> Moderation {
        Moderation::new(
            reg,
            NodeId(moderator),
            seq,
            SwarmId(0),
            SimTime::from_hours(t_hours),
            ContentQuality::Genuine,
        )
    }

    #[test]
    fn insert_and_contains() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 10);
        let m = item(&reg, 1, 0, 1);
        assert!(db.insert(m, SimTime::from_hours(2)));
        assert!(db.contains(m.id()));
        assert!(!db.insert(m, SimTime::from_hours(3)), "duplicate refused");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn disapproval_purges_and_blocks() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 10);
        db.insert(item(&reg, 1, 0, 1), SimTime::from_hours(1));
        db.insert(item(&reg, 1, 1, 1), SimTime::from_hours(1));
        db.insert(item(&reg, 2, 0, 1), SimTime::from_hours(1));
        db.set_opinion(NodeId(1), LocalVote::Disapprove, SimTime::from_hours(2));
        assert_eq!(db.len(), 1, "moderator 1's items purged");
        assert!(!db.insert(item(&reg, 1, 2, 3), SimTime::from_hours(3)));
        assert_eq!(db.known_moderators(), vec![NodeId(2)]);
    }

    #[test]
    fn revote_replaces_single_entry() {
        let mut db = LocalDb::new(NodeId(0), 10);
        db.set_opinion(NodeId(1), LocalVote::Approve, SimTime::from_hours(1));
        db.set_opinion(NodeId(1), LocalVote::Disapprove, SimTime::from_hours(2));
        assert_eq!(db.opinion(NodeId(1)), Some(LocalVote::Disapprove));
        assert_eq!(db.opinion_count(), 1);
    }

    #[test]
    fn extract_gated_by_approval() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 20);
        db.insert(item(&reg, 1, 0, 1), SimTime::from_hours(1)); // approved below
        db.insert(item(&reg, 2, 0, 1), SimTime::from_hours(1)); // no vote
        db.insert(item(&reg, 0, 0, 1), SimTime::from_hours(1)); // own
        db.set_opinion(NodeId(1), LocalVote::Approve, SimTime::from_hours(1));
        let mut rng = DetRng::new(1);
        let out = db.extract(10, ExtractPolicy::RecencyAndRandom, &mut rng);
        let mods: Vec<NodeId> = out.iter().map(|m| m.moderator).collect();
        assert!(mods.contains(&NodeId(0)), "own items always spread");
        assert!(mods.contains(&NodeId(1)), "approved moderator spreads");
        assert!(
            !mods.contains(&NodeId(2)),
            "unapproved moderator must not be forwarded"
        );
    }

    #[test]
    fn extract_respects_max_and_recency() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 64);
        db.set_opinion(NodeId(1), LocalVote::Approve, SimTime::ZERO);
        for s in 0..20 {
            db.insert(item(&reg, 1, s, 1), SimTime::from_hours(s as u64));
        }
        let mut rng = DetRng::new(2);
        let out = db.extract(6, ExtractPolicy::Recency, &mut rng);
        assert_eq!(out.len(), 6);
        // Pure recency: the newest-received six are seq 14..=19.
        let mut seqs: Vec<u32> = out.iter().map(|m| m.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![14, 15, 16, 17, 18, 19]);
    }

    #[test]
    fn hybrid_extract_mixes_recent_and_random() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 128);
        db.set_opinion(NodeId(1), LocalVote::Approve, SimTime::ZERO);
        for s in 0..50 {
            db.insert(item(&reg, 1, s, 1), SimTime::from_hours(s as u64));
        }
        let mut rng = DetRng::new(3);
        let out = db.extract(10, ExtractPolicy::RecencyAndRandom, &mut rng);
        assert_eq!(out.len(), 10);
        let recent = out.iter().filter(|m| m.seq >= 45).count();
        assert!(recent >= 5, "half the slots go to the newest items");
        let older = out.iter().filter(|m| m.seq < 45).count();
        assert!(older >= 1, "random half reaches older items");
    }

    #[test]
    fn random_extract_covers_catalogue_over_calls() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 128);
        db.set_opinion(NodeId(1), LocalVote::Approve, SimTime::ZERO);
        for s in 0..30 {
            db.insert(item(&reg, 1, s, 1), SimTime::from_hours(1));
        }
        let mut rng = DetRng::new(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..60 {
            for m in db.extract(5, ExtractPolicy::Random, &mut rng) {
                seen.insert(m.seq);
            }
        }
        assert!(
            seen.len() >= 25,
            "random policy sweeps items: {}",
            seen.len()
        );
    }

    #[test]
    fn capacity_evicts_oldest_foreign_first() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 3);
        db.insert(item(&reg, 0, 0, 0), SimTime::from_hours(0)); // own, oldest
        db.insert(item(&reg, 1, 0, 0), SimTime::from_hours(1));
        db.insert(item(&reg, 2, 0, 0), SimTime::from_hours(2));
        // Full. New arrival evicts the oldest foreign (moderator 1).
        let new_item = item(&reg, 3, 0, 0);
        assert!(db.insert(new_item, SimTime::from_hours(3)));
        assert_eq!(db.len(), 3);
        assert!(db.contains(new_item.id()));
        assert_eq!(db.known_moderators(), vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn merge_counts_new_items() {
        let reg = reg();
        let mut db = LocalDb::new(NodeId(0), 10);
        let a = item(&reg, 1, 0, 1);
        let b = item(&reg, 1, 1, 1);
        db.insert(a, SimTime::ZERO);
        let added = db.merge(&[a, b], SimTime::from_hours(1));
        assert_eq!(added, 1);
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        LocalDb::new(NodeId(0), 0);
    }
}
