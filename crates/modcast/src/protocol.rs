//! The ModerationCast gossip protocol (paper Fig 1).
//!
//! Push/pull exchange: when the PSS pairs nodes `i` and `j`, each sends the
//! other its `Extract()` list and merges what it receives, after verifying
//! every signature. Forwarding gating (only approved moderators' items are
//! extracted) lives in [`crate::db::LocalDb`]; this module wires the
//! population together.

use crate::db::{ExtractPolicy, LocalDb, LocalVote};
use crate::moderation::{ContentQuality, Moderation};
use crate::sign::KeyRegistry;
use rvs_sim::{DetRng, ModeratorId, NodeId, SimTime, SwarmId};
use rvs_telemetry::ModerationCounters;
use serde::{Deserialize, Serialize};

/// Tuning for ModerationCast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModerationCastConfig {
    /// `local_db` capacity per node.
    pub db_capacity: usize,
    /// Maximum moderations per gossip message.
    pub max_list: usize,
    /// Extract selection policy.
    pub policy: ExtractPolicy,
}

impl Default for ModerationCastConfig {
    fn default() -> Self {
        ModerationCastConfig {
            db_capacity: 1_000,
            max_list: 50,
            policy: ExtractPolicy::RecencyAndRandom,
        }
    }
}

/// Stable binary encoding: the three tuning fields in declaration order.
impl rvs_checkpoint::Persist for ModerationCastConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.usize(self.db_capacity);
        enc.usize(self.max_list);
        self.policy.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ModerationCastConfig {
            db_capacity: dec.usize()?,
            max_list: dec.usize()?,
            policy: ExtractPolicy::restore(dec)?,
        })
    }
}

/// Network-wide ModerationCast state: one `local_db` per node.
#[derive(Debug, Clone)]
pub struct ModerationCast {
    cfg: ModerationCastConfig,
    dbs: Vec<LocalDb>,
    next_seq: Vec<u32>,
    counters: ModerationCounters,
}

impl ModerationCast {
    /// ModerationCast over `n` nodes.
    pub fn new(n: usize, cfg: ModerationCastConfig) -> Self {
        ModerationCast {
            cfg,
            dbs: (0..n)
                .map(|i| LocalDb::new(NodeId::from_index(i), cfg.db_capacity))
                .collect(),
            next_seq: vec![0; n],
            counters: ModerationCounters::default(),
        }
    }

    /// Population-wide dissemination counters.
    pub fn counters(&self) -> &ModerationCounters {
        &self.counters
    }

    /// Node `i`'s database.
    pub fn db(&self, i: NodeId) -> &LocalDb {
        &self.dbs[i.index()]
    }

    /// Mutable access (used by vote protocols and attack models).
    pub fn db_mut(&mut self, i: NodeId) -> &mut LocalDb {
        &mut self.dbs[i.index()]
    }

    /// The local user of node `i` votes on `moderator`.
    pub fn set_opinion(
        &mut self,
        i: NodeId,
        moderator: ModeratorId,
        vote: LocalVote,
        now: SimTime,
    ) {
        self.dbs[i.index()].set_opinion(moderator, vote, now);
    }

    /// `moderator` creates, signs, and locally stores a new moderation.
    pub fn publish(
        &mut self,
        registry: &KeyRegistry,
        moderator: ModeratorId,
        swarm: SwarmId,
        quality: ContentQuality,
        now: SimTime,
    ) -> Moderation {
        let seq = self.next_seq[moderator.index()];
        self.next_seq[moderator.index()] += 1;
        let m = Moderation::new(registry, moderator, seq, swarm, now, quality);
        self.dbs[moderator.index()].insert(m, now);
        m
    }

    /// The push half of an exchange: node `i`'s outgoing moderation
    /// list, extracted with the configured recency+random policy. The
    /// list *is* the wire message — the scenario engine hands it to the
    /// guard plane (and any adversarial mutator) before delivery.
    pub fn extract_from(&mut self, i: NodeId, rng: &mut DetRng) -> Vec<Moderation> {
        self.dbs[i.index()].extract(self.cfg.max_list, self.cfg.policy, rng)
    }

    /// The pull half of an exchange: deliver `list` to `receiver` —
    /// signature-check every entry, drop forged ones, merge the rest
    /// through the approval gate. Returns the number newly stored.
    pub fn deliver_list(
        &mut self,
        registry: &KeyRegistry,
        receiver: NodeId,
        list: &[Moderation],
        now: SimTime,
    ) -> usize {
        let sent = list.len() as u64;
        self.counters.pushed += sent;
        self.counters.signature_verifies += sent;
        let verified: Vec<Moderation> = list
            .iter()
            .copied()
            .filter(|m| m.verify(registry))
            .collect();
        let received = verified.len() as u64;
        self.counters.signature_failures += sent - received;
        self.counters.pulled += received;
        let stats = self.dbs[receiver.index()].merge_counted(&verified, now);
        self.counters.rejected_by_gate += stats.refused_by_gate as u64;
        stats.stored
    }

    /// One push/pull gossip exchange between `i` and `j` (Fig 1): both
    /// extract, both merge, signatures verified, forged items dropped.
    /// Composed from [`ModerationCast::extract_from`] and
    /// [`ModerationCast::deliver_list`] in the historical order (extract
    /// `i` then `j`, deliver into `i` then `j`), so the recomposition is
    /// draw-for-draw and counter-for-counter identical to the old inline
    /// body. Returns `(new_at_i, new_at_j)`.
    pub fn exchange(
        &mut self,
        registry: &KeyRegistry,
        i: NodeId,
        j: NodeId,
        now: SimTime,
        rng: &mut DetRng,
    ) -> (usize, usize) {
        if i == j {
            return (0, 0);
        }
        let list_i = self.extract_from(i, rng);
        let list_j = self.extract_from(j, rng);
        let stored_i = self.deliver_list(registry, i, &list_j, now);
        let stored_j = self.deliver_list(registry, j, &list_i, now);
        (stored_i, stored_j)
    }

    /// How many nodes store at least one item from `moderator` — the
    /// moderator's dissemination coverage.
    pub fn coverage(&self, moderator: ModeratorId) -> usize {
        self.dbs
            .iter()
            .filter(|db| db.known_moderators().contains(&moderator))
            .count()
    }
}

/// Stable binary encoding: config, per-node databases, per-moderator
/// sequence counters, then the dissemination counters.
impl rvs_checkpoint::Persist for ModerationCast {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.cfg.persist(enc);
        self.dbs.persist(enc);
        self.next_seq.persist(enc);
        self.counters.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(ModerationCast {
            cfg: ModerationCastConfig::restore(dec)?,
            dbs: Vec::restore(dec)?,
            next_seq: Vec::restore(dec)?,
            counters: ModerationCounters::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (ModerationCast, KeyRegistry, DetRng) {
        (
            ModerationCast::new(n, ModerationCastConfig::default()),
            KeyRegistry::new(n, 11),
            DetRng::new(13),
        )
    }

    /// Random pairwise gossip round over all nodes.
    fn gossip_round(
        mc: &mut ModerationCast,
        reg: &KeyRegistry,
        n: usize,
        now: SimTime,
        rng: &mut DetRng,
    ) {
        for i in 0..n {
            let j = rng.index(n);
            if i != j {
                mc.exchange(reg, NodeId::from_index(i), NodeId::from_index(j), now, rng);
            }
        }
    }

    #[test]
    fn publish_stores_locally() {
        let (mut mc, reg, _) = setup(4);
        let m = mc.publish(
            &reg,
            NodeId(1),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        assert!(mc.db(NodeId(1)).contains(m.id()));
        assert_eq!(mc.coverage(NodeId(1)), 1);
    }

    #[test]
    fn sequence_numbers_increment() {
        let (mut mc, reg, _) = setup(2);
        let a = mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        let b = mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
    }

    #[test]
    fn exchange_moves_own_items_both_ways() {
        let (mut mc, reg, mut rng) = setup(3);
        mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        mc.publish(
            &reg,
            NodeId(1),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        let (new0, new1) = mc.exchange(&reg, NodeId(0), NodeId(1), SimTime::from_secs(5), &mut rng);
        assert_eq!((new0, new1), (1, 1));
        assert_eq!(mc.coverage(NodeId(0)), 2);
        assert_eq!(mc.coverage(NodeId(1)), 2);
    }

    #[test]
    fn forged_items_dropped_on_exchange() {
        let (mut mc, reg, mut rng) = setup(3);
        // Node 1 holds a forged item claiming to be from node 2.
        let forged = Moderation {
            moderator: NodeId(2),
            seq: 0,
            swarm: SwarmId(0),
            created: SimTime::ZERO,
            quality: ContentQuality::Spam,
            sig: crate::sign::Signature(0xDEAD),
        };
        // Inject directly into node 1's db as its "own"? It isn't its own;
        // make node1 approve moderator 2 so the forged item would be
        // forwarded if accepted.
        mc.set_opinion(NodeId(1), NodeId(2), LocalVote::Approve, SimTime::ZERO);
        mc.db_mut(NodeId(1)).insert(forged, SimTime::ZERO);
        mc.exchange(&reg, NodeId(0), NodeId(1), SimTime::from_secs(5), &mut rng);
        assert!(
            !mc.db(NodeId(0)).contains(forged.id()),
            "forged moderation must not survive verification"
        );
    }

    #[test]
    fn approved_moderator_spreads_faster_than_unapproved() {
        let n = 40;
        let (mut mc, reg, mut rng) = setup(n);
        // Moderator 0: approved by half the population up front.
        // Moderator 1: no approvals.
        mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        mc.publish(
            &reg,
            NodeId(1),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        for i in 2..n / 2 {
            mc.set_opinion(
                NodeId::from_index(i),
                NodeId(0),
                LocalVote::Approve,
                SimTime::ZERO,
            );
        }
        for round in 0..6 {
            gossip_round(&mut mc, &reg, n, SimTime::from_secs(round * 5), &mut rng);
        }
        let fast = mc.coverage(NodeId(0));
        let slow = mc.coverage(NodeId(1));
        assert!(
            fast > slow,
            "approved moderator should spread faster: {fast} vs {slow}"
        );
        assert!(slow >= 1, "unapproved still spreads by direct contact");
    }

    #[test]
    fn disapproval_halts_forwarding_chain() {
        let (mut mc, reg, mut rng) = setup(3);
        mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Spam,
            SimTime::ZERO,
        );
        // Node 1 disapproves moderator 0: refuses and never forwards.
        mc.set_opinion(NodeId(1), NodeId(0), LocalVote::Disapprove, SimTime::ZERO);
        mc.exchange(&reg, NodeId(0), NodeId(1), SimTime::from_secs(5), &mut rng);
        assert_eq!(mc.coverage(NodeId(0)), 1, "disapprover refused the item");
        // Node 2 meets node 1: nothing to receive.
        mc.exchange(&reg, NodeId(1), NodeId(2), SimTime::from_secs(10), &mut rng);
        assert_eq!(mc.coverage(NodeId(0)), 1);
        // But node 2 meeting the moderator directly still receives it.
        mc.exchange(&reg, NodeId(0), NodeId(2), SimTime::from_secs(15), &mut rng);
        assert_eq!(mc.coverage(NodeId(0)), 2);
    }

    #[test]
    fn neutral_nodes_store_but_do_not_forward() {
        let (mut mc, reg, mut rng) = setup(3);
        mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        // Node 1 receives directly (no vote either way).
        mc.exchange(&reg, NodeId(0), NodeId(1), SimTime::from_secs(5), &mut rng);
        assert_eq!(mc.coverage(NodeId(0)), 2);
        // Node 1 meets node 2: the null-vote item is not forwarded (Fig 2).
        mc.exchange(&reg, NodeId(1), NodeId(2), SimTime::from_secs(10), &mut rng);
        assert_eq!(mc.coverage(NodeId(0)), 2);
    }

    #[test]
    fn self_exchange_is_noop() {
        let (mut mc, reg, mut rng) = setup(2);
        mc.publish(
            &reg,
            NodeId(0),
            SwarmId(0),
            ContentQuality::Genuine,
            SimTime::ZERO,
        );
        assert_eq!(
            mc.exchange(&reg, NodeId(0), NodeId(0), SimTime::ZERO, &mut rng),
            (0, 0)
        );
    }
}
