//! Hostile-input gate for inbound moderation lists.
//!
//! A moderation list is the push half of a ModerationCast exchange.
//! Before any entry reaches a local database the whole list passes this
//! gate: length bound, moderator-id bound, one entry per moderation id,
//! timestamp sanity, and a signature check against the simulated PKI.
//! The gate is total — never panics, first violation wins — and pure,
//! taking the receiver's clock and bounds as parameters.

use crate::moderation::Moderation;
use crate::sign::KeyRegistry;
use rvs_guard::RejectReason;
use rvs_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// Validate an inbound moderation list: at most `max_len` entries, every
/// moderator id under `max_id` (exclusive), each `(moderator, seq)` id
/// at most once, `created` no further than `max_skew` past `now`, and a
/// valid signature per entry. Signature checks run last so a mutation
/// that also breaks the signature is attributed to its structural cause.
pub fn validate_moderation_list(
    list: &[Moderation],
    registry: &KeyRegistry,
    max_len: usize,
    max_id: usize,
    now: SimTime,
    max_skew: SimDuration,
) -> Result<(), RejectReason> {
    if list.len() > max_len {
        return Err(RejectReason::ListTooLong);
    }
    let horizon = now.saturating_add(max_skew);
    let mut seen = BTreeSet::new();
    for m in list {
        if m.moderator.index() >= max_id {
            return Err(RejectReason::InvalidNode);
        }
        if !seen.insert((m.moderator, m.seq)) {
            return Err(RejectReason::DuplicateEntry);
        }
        if m.created > horizon {
            return Err(RejectReason::FutureTimestamp);
        }
        if !m.verify(registry) {
            return Err(RejectReason::BadSignature);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moderation::ContentQuality;
    use rvs_sim::{NodeId, SwarmId};

    const NOW: SimTime = SimTime::from_hours(5);

    fn setup() -> (KeyRegistry, Vec<Moderation>) {
        let reg = KeyRegistry::new(8, 42);
        let list: Vec<Moderation> = (0..4)
            .map(|i| {
                Moderation::new(
                    &reg,
                    NodeId(i),
                    i,
                    SwarmId(100 + i),
                    SimTime::from_hours(1),
                    ContentQuality::Genuine,
                )
            })
            .collect();
        (reg, list)
    }

    fn check(reg: &KeyRegistry, list: &[Moderation]) -> Result<(), RejectReason> {
        validate_moderation_list(list, reg, 50, 8, NOW, SimDuration::ZERO)
    }

    #[test]
    fn honest_list_is_accepted() {
        let (reg, list) = setup();
        assert_eq!(check(&reg, &list), Ok(()));
        assert_eq!(check(&reg, &[]), Ok(()));
    }

    #[test]
    fn overlong_list_is_rejected() {
        let (reg, list) = setup();
        assert_eq!(
            validate_moderation_list(&list, &reg, 3, 8, NOW, SimDuration::ZERO),
            Err(RejectReason::ListTooLong)
        );
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let (reg, mut list) = setup();
        list.push(list[0]);
        assert_eq!(check(&reg, &list), Err(RejectReason::DuplicateEntry));
    }

    #[test]
    fn out_of_population_moderator_is_rejected() {
        let (reg, list) = setup();
        assert_eq!(
            validate_moderation_list(&list, &reg, 50, 2, NOW, SimDuration::ZERO),
            Err(RejectReason::InvalidNode)
        );
    }

    #[test]
    fn future_created_is_rejected_before_signature() {
        let (reg, mut list) = setup();
        // Bumping `created` also breaks the signature; the gate must
        // attribute the structural cause, not the knock-on one.
        list[0].created = NOW.saturating_add(SimDuration::from_secs(1));
        assert_eq!(check(&reg, &list), Err(RejectReason::FutureTimestamp));
    }

    #[test]
    fn bad_signature_is_rejected() {
        let (reg, mut list) = setup();
        list[2].sig.0 ^= 0xDEAD_BEEF;
        assert_eq!(check(&reg, &list), Err(RejectReason::BadSignature));
    }
}
