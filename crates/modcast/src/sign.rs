//! Simulated public-key identities and signatures.
//!
//! Deployed Tribler gives every peer a non-spoofable public-key identity;
//! all protocol messages are signed, preventing forged or altered
//! moderations. Inside a closed simulation we do not need real
//! cryptography — no modelled adversary attacks the cipher — only its
//! *behavioural* guarantees:
//!
//! 1. a moderation verifiably originates from its claimed moderator, and
//! 2. any alteration of signed fields is detected.
//!
//! [`KeyRegistry`] provides exactly that with a keyed 64-bit hash: each
//! node has a secret derived from a master seed; `sign` mixes the secret
//! with the message digest; `verify` recomputes. The registry stands in
//! for the PKI's certificate directory. See DESIGN.md ("Substitutions").

use rvs_sim::{DetRng, NodeId};
use serde::{Deserialize, Serialize};

/// A simulated signature value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Signature(pub u64);

/// Stable binary encoding: the raw signature word.
impl rvs_checkpoint::Persist for Signature {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.0);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Signature(dec.u64()?))
    }
}

/// 64-bit message digest over arbitrary fields (SplitMix-style mixing).
pub fn digest(fields: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &f in fields {
        h ^= f;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 32;
    }
    h
}

/// The simulated PKI: per-node signing secrets derived from a master seed.
#[derive(Debug, Clone)]
pub struct KeyRegistry {
    secrets: Vec<u64>,
}

impl KeyRegistry {
    /// Keys for a population of `n` nodes.
    pub fn new(n: usize, master_seed: u64) -> Self {
        // rvs-lint: allow(rng-fork-site) -- simulated-PKI key derivation from the master seed at setup time; never draws during a run
        let mut rng = DetRng::new(master_seed).fork(0x5167_u64);
        KeyRegistry {
            secrets: (0..n).map(|_| rng.next_u64_raw()).collect(),
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// True when no keys exist.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Sign `msg_digest` as `signer`.
    pub fn sign(&self, signer: NodeId, msg_digest: u64) -> Signature {
        Signature(digest(&[self.secrets[signer.index()], msg_digest]))
    }

    /// Verify that `sig` is `signer`'s signature over `msg_digest`.
    pub fn verify(&self, signer: NodeId, msg_digest: u64, sig: Signature) -> bool {
        if signer.index() >= self.secrets.len() {
            return false;
        }
        self.sign(signer, msg_digest) == sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let reg = KeyRegistry::new(4, 42);
        let d = digest(&[1, 2, 3]);
        let sig = reg.sign(NodeId(2), d);
        assert!(reg.verify(NodeId(2), d, sig));
    }

    #[test]
    fn wrong_signer_fails() {
        let reg = KeyRegistry::new(4, 42);
        let d = digest(&[1, 2, 3]);
        let sig = reg.sign(NodeId(2), d);
        assert!(!reg.verify(NodeId(1), d, sig));
    }

    #[test]
    fn tampered_message_fails() {
        let reg = KeyRegistry::new(4, 42);
        let d = digest(&[1, 2, 3]);
        let sig = reg.sign(NodeId(2), d);
        let tampered = digest(&[1, 2, 4]);
        assert!(!reg.verify(NodeId(2), tampered, sig));
    }

    #[test]
    fn out_of_range_signer_fails_verification() {
        let reg = KeyRegistry::new(2, 42);
        assert!(!reg.verify(NodeId(9), 123, Signature(123)));
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest(&[1, 2]), digest(&[2, 1]));
        assert_ne!(digest(&[0]), digest(&[0, 0]));
    }

    #[test]
    fn registries_differ_by_master_seed() {
        let a = KeyRegistry::new(3, 1);
        let b = KeyRegistry::new(3, 2);
        let d = digest(&[7]);
        assert_ne!(a.sign(NodeId(0), d), b.sign(NodeId(0), d));
        // Same seed reproduces the same keys.
        let a2 = KeyRegistry::new(3, 1);
        assert_eq!(a.sign(NodeId(0), d), a2.sign(NodeId(0), d));
    }
}
