//! ModerationCast: decentralized dissemination of signed metadata
//! (paper §IV).
//!
//! *Moderations* are metadata items (description, thumbnail, …) bound to a
//! `.torrent` and signed by their creator, the *moderator*. They spread by
//! push/pull gossip over the PSS (Fig 1), but **forwarding is gated by
//! approval**: a node only passes on moderations from moderators its local
//! user has approved (thumbs-up). Disapproval (thumbs-down) purges the
//! moderator's items from the local database and blocks future ones. Thus
//! well-approved moderators spread quickly while bad ones crawl via direct
//! contact only (Fig 2).
//!
//! Modules:
//!
//! * [`sign`] — the simulated Tribler PKI: keyed-hash signatures binding a
//!   moderation to its moderator (substitution documented in DESIGN.md);
//! * [`moderation`] — the metadata record and ground-truth quality label;
//! * [`db`] — the per-node `local_db` with the recency+random `Extract()`
//!   policy and vote-aware `Merge()`;
//! * [`protocol`] — the network-wide gossip state machine.

pub mod db;
pub mod moderation;
pub mod protocol;
pub mod sign;
pub mod validate;

pub use db::{InsertOutcome, LocalDb, LocalVote, MergeStats};
pub use moderation::{ContentQuality, Moderation, ModerationId};
pub use protocol::{ModerationCast, ModerationCastConfig};
pub use sign::{KeyRegistry, Signature};
pub use validate::validate_moderation_list;
