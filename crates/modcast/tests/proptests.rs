//! Property-based tests for the moderation database and dissemination.

use proptest::prelude::*;
use rvs_modcast::{
    ContentQuality, KeyRegistry, LocalDb, LocalVote, Moderation, ModerationCast,
    ModerationCastConfig,
};
use rvs_sim::{DetRng, NodeId, SimTime, SwarmId};

fn registry() -> KeyRegistry {
    KeyRegistry::new(16, 1234)
}

fn item(reg: &KeyRegistry, moderator: u32, seq: u32) -> Moderation {
    Moderation::new(
        reg,
        NodeId(moderator),
        seq,
        SwarmId(0),
        SimTime::from_secs(seq as u64),
        ContentQuality::Genuine,
    )
}

proptest! {
    /// The db never exceeds capacity, never stores duplicates, and never
    /// stores items from disapproved moderators.
    #[test]
    fn db_capacity_and_vote_invariants(
        capacity in 1usize..20,
        ops in prop::collection::vec((0u32..6, 0u32..30, prop::bool::ANY), 0..80),
    ) {
        let reg = registry();
        let mut db = LocalDb::new(NodeId(15), capacity);
        let mut disapproved = std::collections::BTreeSet::new();
        for (step, (moderator, seq, vote_op)) in ops.into_iter().enumerate() {
            let now = SimTime::from_secs(step as u64);
            if vote_op {
                // Alternate approvals and disapprovals deterministically.
                let v = if seq % 2 == 0 { LocalVote::Approve } else { LocalVote::Disapprove };
                db.set_opinion(NodeId(moderator), v, now);
                if v == LocalVote::Disapprove {
                    disapproved.insert(moderator);
                } else {
                    disapproved.remove(&moderator);
                }
            } else {
                db.insert(item(&reg, moderator, seq), now);
            }
            prop_assert!(db.len() <= capacity);
            for m in db.known_moderators() {
                prop_assert!(!disapproved.contains(&m.0),
                    "item from disapproved moderator {m} survived");
            }
            prop_assert!(db.opinion_count() <= 6);
        }
    }

    /// Extract never returns items from unapproved foreign moderators and
    /// respects the budget, for every policy.
    #[test]
    fn extract_respects_gating(
        approvals in prop::collection::vec(0u32..6, 0..6),
        items in prop::collection::vec((0u32..6, 0u32..40), 0..60),
        max in 0usize..30,
        seed: u64,
    ) {
        let reg = registry();
        let mut db = LocalDb::new(NodeId(15), 256);
        for &m in &approvals {
            db.set_opinion(NodeId(m), LocalVote::Approve, SimTime::ZERO);
        }
        for &(m, s) in &items {
            db.insert(item(&reg, m, s), SimTime::from_secs(s as u64));
        }
        let approved: std::collections::BTreeSet<u32> = approvals.iter().copied().collect();
        let mut rng = DetRng::new(seed);
        for policy in [
            rvs_modcast::db::ExtractPolicy::Recency,
            rvs_modcast::db::ExtractPolicy::Random,
            rvs_modcast::db::ExtractPolicy::RecencyAndRandom,
        ] {
            let out = db.extract(max, policy, &mut rng);
            prop_assert!(out.len() <= max);
            for m in &out {
                prop_assert!(
                    m.moderator == NodeId(15) || approved.contains(&m.moderator.0),
                    "{policy:?} leaked unapproved item from {}", m.moderator
                );
            }
            // No duplicates.
            let mut ids: Vec<_> = out.iter().map(|m| m.id()).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), before);
        }
    }

    /// Gossip exchanges preserve signature validity: every stored item in
    /// every database always verifies.
    #[test]
    fn all_stored_items_verify(
        publishes in prop::collection::vec(0u32..8, 1..10),
        approvals in prop::collection::vec((0u32..8, 0u32..8), 0..16),
        meetings in prop::collection::vec((0u32..8, 0u32..8), 0..25),
        seed: u64,
    ) {
        let reg = KeyRegistry::new(8, 77);
        let mut mc = ModerationCast::new(8, ModerationCastConfig::default());
        let mut rng = DetRng::new(seed);
        for (k, &m) in publishes.iter().enumerate() {
            mc.publish(&reg, NodeId(m), SwarmId(0), ContentQuality::Genuine,
                SimTime::from_secs(k as u64));
        }
        for &(voter, m) in &approvals {
            if voter != m {
                mc.set_opinion(NodeId(voter), NodeId(m), LocalVote::Approve, SimTime::ZERO);
            }
        }
        for (k, &(a, b)) in meetings.iter().enumerate() {
            mc.exchange(&reg, NodeId(a), NodeId(b),
                SimTime::from_secs(100 + k as u64), &mut rng);
        }
        for i in 0..8 {
            for item in mc.db(NodeId(i)).items() {
                prop_assert!(item.verify(&reg), "node {i} stores a forged item");
            }
        }
    }
}
