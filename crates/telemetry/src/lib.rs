//! Runtime telemetry for the vote-sampling stack.
//!
//! Every protocol layer owns a small block of plain `u64` counters (one cache
//! line or less), incremented unconditionally on its hot path — an add is
//! cheaper than a well-predicted branch, so there is no "compiled out" mode
//! for counters. The only genuinely expensive instrument, wall-clock phase
//! timing ([`PhaseTimer`]), is gated behind the global [`set_enabled`] flag
//! because `Instant::now()` is a syscall-ish vDSO call that would show up in
//! tight loops.
//!
//! [`Snapshot`] aggregates every layer's counters plus phase timings into one
//! mergeable, JSON-exportable value. Merging is field-wise saturating
//! addition, which makes it associative and commutative with
//! `Snapshot::default()` as identity — the property the multi-threaded
//! experiment harness relies on (aggregate of per-run snapshots is
//! independent of thread scheduling), verified by proptests in this crate.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Global enable flag (gates timers only; counters are always on)
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable the expensive parts of telemetry (phase timers).
/// Counter increments are unconditional — they cost a single add.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether phase timing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Counter blocks, one per protocol layer
// ---------------------------------------------------------------------------

macro_rules! counter_block {
    (
        $(#[$doc:meta])*
        pub struct $name:ident { $( $(#[$fdoc:meta])* pub $field:ident, )+ }
    ) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
        pub struct $name {
            $( $(#[$fdoc])* pub $field: u64, )+
        }

        impl $name {
            /// Field-wise saturating add of `other` into `self`.
            pub fn merge_from(&mut self, other: &Self) {
                $( self.$field = self.$field.saturating_add(other.$field); )+
            }

            /// Sum of all fields (useful for "anything happened?" checks).
            pub fn total(&self) -> u64 {
                0u64 $( .saturating_add(self.$field) )+
            }
        }

        /// Stable binary encoding: every counter as a `u64`, in declaration
        /// order. Adding, removing, or reordering fields is a checkpoint
        /// format change and must bump `rvs_checkpoint::FORMAT_VERSION`.
        impl rvs_checkpoint::Persist for $name {
            fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
                $( enc.u64(self.$field); )+
            }

            fn restore(
                dec: &mut rvs_checkpoint::Decoder<'_>,
            ) -> Result<Self, rvs_checkpoint::DecodeError> {
                Ok(Self { $( $field: dec.u64()?, )+ })
            }
        }
    };
}

counter_block! {
    /// Encounter bookkeeping, owned by `scenario::System`. Conservation
    /// invariant (checked by the [`Auditor`] consumer in `rvs-scenario`):
    /// `attempted == delivered + dropped_no_sample + dropped_offline_target
    ///  + dropped_self_target + dropped_message_loss`.
    pub struct EncounterCounters {
        /// Gossip initiations by online nodes (one per node per round).
        pub attempted,
        /// Encounters that actually executed the full exchange.
        pub delivered,
        /// Initiator's peer sampler returned no candidate.
        pub dropped_no_sample,
        /// Sampled partner was offline (stale PSS view).
        pub dropped_offline_target,
        /// Sampled partner was the initiator itself.
        pub dropped_self_target,
        /// Encounter lost to the configured message-loss rate.
        pub dropped_message_loss,
    }
}

counter_block! {
    /// ModerationCast traffic, owned by `modcast::ModerationCast`.
    pub struct ModerationCounters {
        /// Moderations sent out during exchanges (push direction).
        pub pushed,
        /// Moderations received during exchanges (pull direction).
        pub pulled,
        /// Received moderations discarded by the local approval gate.
        pub rejected_by_gate,
        /// Signature checks performed on received moderations.
        pub signature_verifies,
        /// Signature checks that failed (forged/corrupt moderations).
        pub signature_failures,
    }
}

counter_block! {
    /// Vote-list handling and ballot-box maintenance, owned by
    /// `core::VoteSampling`.
    pub struct VoteCounters {
        /// Vote lists accepted from experienced peers and merged.
        pub lists_accepted,
        /// Vote lists refused because the sender looked inexperienced.
        pub lists_rejected_inexperienced,
        /// Individual votes written into ballot boxes.
        pub votes_merged,
        /// Ballot-box entries evicted to respect `B_max`.
        pub ballot_evictions,
    }
}

counter_block! {
    /// VoxPopuli bootstrap traffic, owned by `core::VoteSampling`.
    pub struct VoxPopuliCounters {
        /// Top-k requests issued by bootstrapping nodes.
        pub requests,
        /// Non-empty top-k responses served.
        pub responses,
        /// Requests declined because the responder was itself bootstrapping.
        pub declines_bootstrapping,
    }
}

counter_block! {
    /// BarterCast / experience-function work, owned by
    /// `bartercast::BarterCast`.
    pub struct BarterCounters {
        /// Record-exchange encounters executed.
        pub exchanges,
        /// Bounded max-flow evaluations actually computed (the experience
        /// function's hot path; with caching on, only the cache misses).
        pub maxflow_evaluations,
        /// Contribution queries answered from the incremental cache.
        pub cache_hits,
        /// Contribution queries that missed the cache and recomputed.
        pub cache_misses,
    }
}

counter_block! {
    /// Peer-sampling-service activity, owned by `pss::NewscastPss`.
    pub struct PssCounters {
        /// View exchanges completed between two online nodes.
        pub exchanges,
        /// Gossip attempts that hit an offline partner (stale view entry).
        pub failed_contacts,
    }
}

counter_block! {
    /// Fault-injection plane activity, owned by `faults::FaultPlane` (and,
    /// for the retry/crash counters, incremented by `scenario::System`).
    pub struct FaultCounters {
        /// Deliveries scheduled with a non-zero latency.
        pub delayed,
        /// Deliveries that fired after a later-sent message (id inversion).
        pub reordered,
        /// Duplicate copies spawned by the duplication fault.
        pub duplicated,
        /// Deliveries suppressed by receiver-side message-id dedup.
        pub dedup_suppressed,
        /// Sends lost while the Gilbert–Elliott channel was in (or just
        /// entered) the bad state.
        pub dropped_burst,
        /// Sends or in-flight deliveries cut by an active partition.
        pub partitioned,
        /// In-flight deliveries abandoned because an endpoint went offline.
        pub dropped_expired,
        /// Retry attempts issued (encounter resends + VoxPopuli bootstrap).
        pub retries,
        /// Retry rounds abandoned after exhausting the attempt budget.
        pub backoff_gaveups,
        /// Crash-restart faults applied (volatile protocol state wiped).
        pub crash_restarts,
    }
}

counter_block! {
    /// Byzantine guard-plane activity, owned by `guard::Governor` (with
    /// the inbox and attack counters incremented by `scenario::System`).
    /// One `rejected_*` counter per `RejectReason` variant: every refused
    /// message is attributed to exactly one of them.
    pub struct GuardCounters {
        /// Messages that passed admission and validation.
        pub accepted,
        /// Rejections: list exceeded its wire-length bound.
        pub rejected_list_too_long,
        /// Rejections: duplicate-entry stuffing inside one message.
        pub rejected_duplicate_entry,
        /// Rejections: timestamp beyond the allowed future skew.
        pub rejected_future_timestamp,
        /// Rejections: timestamp outside the replay window.
        pub rejected_stale_timestamp,
        /// Rejections: signature check failed against the claimed signer.
        pub rejected_bad_signature,
        /// Rejections: node/moderator id outside the population (+ slack).
        pub rejected_invalid_node,
        /// Rejections: record with identical endpoints (self-barter).
        pub rejected_self_reference,
        /// Rejections: BarterCast record not incident to its reporter.
        pub rejected_hearsay_record,
        /// Rejections: numeric field past its sanity bound.
        pub rejected_oversized,
        /// Rejections: bytes that did not decode as the claimed message.
        pub rejected_malformed,
        /// Rejections: sender's per-class token bucket was empty.
        pub rejected_rate_limited,
        /// Rejections: sender was quarantined.
        pub rejected_quarantined,
        /// Primary deliveries dropped at a full bounded inbox (this term
        /// joins the encounter conservation identity).
        pub inbox_dropped,
        /// Duplicate deliveries dropped at a full bounded inbox (outside
        /// the conservation identity, like all duplicates).
        pub inbox_dropped_dup,
        /// Offense strikes taken across all peers.
        pub strikes,
        /// Quarantines entered.
        pub quarantines_started,
        /// Quarantines served and released.
        pub quarantines_released,
        /// Peer-rounds spent in quarantine (a time-integral gauge).
        pub quarantine_rounds,
        /// Released peers whose accepted votes were re-validated.
        pub release_revalidations,
        /// Ballot entries forgotten during release re-validation.
        pub release_forgets,
        /// Extra gossip initiations injected by `Flooder` adversaries.
        pub flooder_sends,
        /// Wire messages mutated by the `Malformer` adversary.
        pub malformer_mutations,
    }
}

counter_block! {
    /// Cross-shard bus activity, owned by `shard::ShardBus`. These are the
    /// only counters allowed to differ between a K-shard run and the K=1
    /// monolithic run (the shard differential suite compares snapshots
    /// through [`Snapshot::modulo_shards`]); everything else is part of the
    /// byte-identity contract.
    pub struct ShardCounters {
        /// Envelopes posted whose sender and target live on different shards.
        pub envelopes_routed,
        /// Envelopes posted whose sender and target share a shard.
        pub envelopes_local,
        /// Serialized payload bytes carried across the bus (all envelopes).
        pub bus_bytes,
        /// Envelopes delivered at a later round barrier than the one they
        /// were posted in (only checkpoint-carried envelopes defer).
        pub envelopes_deferred,
        /// Envelopes refused by the bus admission gate (malformed key,
        /// wrong shard, non-monotone sequence). Zero in honest runs.
        pub envelopes_rejected,
        /// High-watermark of envelopes queued on the bus at any point —
        /// the gauge a future backpressure policy would police.
        pub queue_high_watermark,
    }
}

// ---------------------------------------------------------------------------
// Shared atomic counter for `&self` hot paths
// ---------------------------------------------------------------------------

/// A relaxed atomic counter for instrumenting methods that take `&self`
/// (e.g. `BarterCast::contribution_kib`). Relaxed ordering is fine: the
/// value is only read when assembling snapshots.
#[derive(Debug, Default)]
pub struct SharedCounter(AtomicU64);

impl SharedCounter {
    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clone for SharedCounter {
    fn clone(&self) -> Self {
        SharedCounter(AtomicU64::new(self.get()))
    }
}

/// Stable binary encoding: the current value (a relaxed load — checkpoints
/// are only taken between rounds, when no other thread is incrementing).
impl rvs_checkpoint::Persist for SharedCounter {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.u64(self.get());
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(SharedCounter(AtomicU64::new(dec.u64()?)))
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A point-in-time aggregate of every layer's counters plus phase timings.
///
/// `merge` is field-wise saturating addition (and key-wise addition for
/// `phases`), so it is associative and commutative, with
/// `Snapshot::default()` as the identity — snapshots from parallel runs can
/// be folded in any order with identical results. Phase durations are stored
/// as integer nanoseconds for exactly that reason: floating-point addition
/// is not associative.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Encounter-layer counters.
    pub encounters: EncounterCounters,
    /// ModerationCast counters.
    pub moderation: ModerationCounters,
    /// Vote-sampling counters.
    pub votes: VoteCounters,
    /// VoxPopuli counters.
    pub voxpopuli: VoxPopuliCounters,
    /// BarterCast counters.
    pub barter: BarterCounters,
    /// Peer-sampling-service counters.
    pub pss: PssCounters,
    /// Fault-injection-plane counters.
    pub faults: FaultCounters,
    /// Byzantine guard-plane counters.
    pub guard: GuardCounters,
    /// Cross-shard bus counters.
    pub shard: ShardCounters,
    /// Wall-clock time per named phase, in nanoseconds.
    pub phase_nanos: BTreeMap<String, u64>,
}

impl Snapshot {
    /// Fold `other` into `self` (field-wise saturating addition).
    pub fn merge(&mut self, other: &Snapshot) {
        self.encounters.merge_from(&other.encounters);
        self.moderation.merge_from(&other.moderation);
        self.votes.merge_from(&other.votes);
        self.voxpopuli.merge_from(&other.voxpopuli);
        self.barter.merge_from(&other.barter);
        self.pss.merge_from(&other.pss);
        self.faults.merge_from(&other.faults);
        self.guard.merge_from(&other.guard);
        self.shard.merge_from(&other.shard);
        for (phase, nanos) in &other.phase_nanos {
            let slot = self.phase_nanos.entry(phase.clone()).or_insert(0);
            *slot = slot.saturating_add(*nanos);
        }
    }

    /// `a.merged(b)` without mutating either operand.
    pub fn merged(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// A copy with `phase_nanos` cleared. Counters are deterministic given
    /// a seed; wall-clock phases are not. Experiments that compare or
    /// byte-diff snapshots across runs use this projection.
    pub fn counters_only(&self) -> Snapshot {
        let mut out = self.clone();
        out.phase_nanos.clear();
        out
    }

    /// A copy with the contribution-cache-dependent BarterCast counters
    /// zeroed (`maxflow_evaluations`, `cache_hits`, `cache_misses`). Two
    /// runs that differ only in whether the contribution cache is enabled
    /// must produce identical snapshots under this projection — the
    /// cached-vs-uncached determinism regression tests compare through it.
    pub fn modulo_cache(&self) -> Snapshot {
        let mut out = self.clone();
        out.barter.maxflow_evaluations = 0;
        out.barter.cache_hits = 0;
        out.barter.cache_misses = 0;
        out
    }

    /// A copy with the [`ShardCounters`] block zeroed. Bus bookkeeping is
    /// the one block that legitimately varies with the shard count K (a
    /// K=1 run routes nothing); every other counter must be identical
    /// across K — the shard differential suite compares through this
    /// projection.
    pub fn modulo_shards(&self) -> Snapshot {
        let mut out = self.clone();
        out.shard = ShardCounters::default();
        out
    }

    /// Total encounter drops across all drop reasons.
    pub fn total_dropped(&self) -> u64 {
        let e = &self.encounters;
        e.dropped_no_sample
            + e.dropped_offline_target
            + e.dropped_self_target
            + e.dropped_message_loss
    }

    /// Pretty JSON rendering of the snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Compact JSON rendering (stable field order; byte-comparable).
    pub fn to_json_compact(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Parse a snapshot back from JSON.
    pub fn from_json(s: &str) -> Result<Snapshot, serde_json::Error> {
        serde_json::from_str(s)
    }
}

// ---------------------------------------------------------------------------
// Phase timer
// ---------------------------------------------------------------------------

/// Accumulating wall-clock timer for named phases.
///
/// `start`/`stop` are no-ops while telemetry is disabled ([`set_enabled`]),
/// so profiling can be left threaded through hot code at zero cost.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    accum: BTreeMap<String, u64>,
    current: Option<(String, Instant)>,
}

impl PhaseTimer {
    /// A timer with no banked phases and nothing in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin timing `phase`, ending any phase currently in flight.
    pub fn start(&mut self, phase: &str) {
        if !enabled() {
            return;
        }
        self.stop();
        // rvs-lint: allow(wall-clock) -- phase timers are perf instrumentation, gated behind set_enabled and excluded from deterministic comparisons via counters_only
        self.current = Some((phase.to_string(), Instant::now()));
    }

    /// Stop the phase in flight (if any) and bank its elapsed time.
    pub fn stop(&mut self) {
        if let Some((phase, began)) = self.current.take() {
            let nanos = u64::try_from(began.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let slot = self.accum.entry(phase).or_insert(0);
            *slot = slot.saturating_add(nanos);
        }
    }

    /// Time a closure under `phase` and return its result.
    pub fn time<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        if !enabled() {
            return f();
        }
        // rvs-lint: allow(wall-clock) -- perf instrumentation only; never feeds protocol state or deterministic output
        let began = Instant::now();
        let out = f();
        let nanos = u64::try_from(began.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let slot = self.accum.entry(phase.to_string()).or_insert(0);
        *slot = slot.saturating_add(nanos);
        out
    }

    /// Banked phase durations so far (does not include a phase in flight).
    pub fn phases(&self) -> &BTreeMap<String, u64> {
        &self.accum
    }

    /// Move the banked durations into a snapshot's `phase_nanos`.
    pub fn drain_into(&mut self, snapshot: &mut Snapshot) {
        self.stop();
        for (phase, nanos) in std::mem::take(&mut self.accum) {
            let slot = snapshot.phase_nanos.entry(phase).or_insert(0);
            *slot = slot.saturating_add(nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(seed: u64) -> Snapshot {
        let mut s = Snapshot::default();
        s.encounters.attempted = seed;
        s.encounters.delivered = seed / 2;
        s.votes.votes_merged = seed * 3;
        s.phase_nanos.insert("gossip".to_string(), seed * 7);
        s
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample_snapshot(10);
        a.merge(&sample_snapshot(5));
        assert_eq!(a.encounters.attempted, 15);
        assert_eq!(a.votes.votes_merged, 45);
        assert_eq!(a.phase_nanos["gossip"], 105);
    }

    #[test]
    fn identity_is_default() {
        let a = sample_snapshot(42);
        assert_eq!(a.merged(&Snapshot::default()), a);
        assert_eq!(Snapshot::default().merged(&a), a);
    }

    #[test]
    fn modulo_cache_zeroes_only_cache_counters() {
        let mut s = sample_snapshot(3);
        s.barter.exchanges = 11;
        s.barter.maxflow_evaluations = 22;
        s.barter.cache_hits = 33;
        s.barter.cache_misses = 44;
        let m = s.modulo_cache();
        assert_eq!(m.barter.exchanges, 11);
        assert_eq!(m.barter.maxflow_evaluations, 0);
        assert_eq!(m.barter.cache_hits, 0);
        assert_eq!(m.barter.cache_misses, 0);
        assert_eq!(m.encounters, s.encounters);
        assert_eq!(m.votes, s.votes);
    }

    #[test]
    fn chunked_merge_is_shard_invariant() {
        // The sharded round engine folds per-chunk counter deltas with
        // merge_from in chunk order; field-wise saturating addition is
        // associative + commutative, so any chunking of the same deltas
        // must produce the same totals. This is the counter half of the
        // thread-count-invariance proof.
        let deltas: Vec<EncounterCounters> = (1..=12)
            .map(|i| EncounterCounters {
                attempted: i,
                delivered: i / 2,
                dropped_message_loss: i % 3,
                ..Default::default()
            })
            .collect();
        let fold = |chunk_size: usize| {
            let mut total = EncounterCounters::default();
            for chunk in deltas.chunks(chunk_size) {
                let mut shard = EncounterCounters::default();
                for d in chunk {
                    shard.merge_from(d);
                }
                total.merge_from(&shard);
            }
            total
        };
        let serial = fold(1);
        for chunk_size in [2, 3, 4, 5, 12] {
            assert_eq!(
                fold(chunk_size),
                serial,
                "chunk size {chunk_size} changed counter totals"
            );
        }
        assert_eq!(serial.attempted, (1..=12).sum::<u64>());
    }

    #[test]
    fn json_roundtrip() {
        let a = sample_snapshot(9);
        let back = Snapshot::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
        let back2 = Snapshot::from_json(&a.to_json_compact()).unwrap();
        assert_eq!(back2, a);
    }

    #[test]
    fn shared_counter_counts() {
        let c = SharedCounter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.clone().get(), 5);
    }

    #[test]
    fn phase_timer_respects_enable_flag() {
        // Note: tests in this crate run in one process; restore the flag.
        set_enabled(false);
        let mut t = PhaseTimer::new();
        t.start("x");
        t.stop();
        assert!(t.phases().is_empty());
        set_enabled(true);
        let y = t.time("y", || 21 * 2);
        assert_eq!(y, 42);
        assert!(t.phases().contains_key("y"));
    }

    #[test]
    fn drain_moves_phases() {
        let mut t = PhaseTimer::new();
        t.time("a", || std::hint::black_box(1 + 1));
        let mut s = Snapshot::default();
        t.drain_into(&mut s);
        assert!(s.phase_nanos.contains_key("a"));
        assert!(t.phases().is_empty());
    }
}
