//! Algebraic properties of [`Snapshot::merge`]: associative, commutative,
//! with `Snapshot::default()` as identity. The parallel experiment harness
//! folds per-run snapshots in whatever order threads finish, so these
//! properties are what make the aggregate independent of scheduling.
//! Field values range over all of `u64` — saturating addition keeps the
//! algebra intact even at the overflow boundary.

use proptest::prelude::*;
use rvs_telemetry::Snapshot;
use std::collections::BTreeMap;

/// Deserialize a snapshot from 32 raw counter values (6 encounter + 5
/// moderation + 4 vote + 3 voxpopuli + 2 barter + 2 pss + 10 fault) plus a
/// phase map.
fn snapshot_from(vals: &[u64], phases: BTreeMap<u8, u64>) -> Snapshot {
    assert_eq!(vals.len(), 32);
    let mut s = Snapshot::default();
    let e = &mut s.encounters;
    [
        &mut e.attempted,
        &mut e.delivered,
        &mut e.dropped_no_sample,
        &mut e.dropped_offline_target,
        &mut e.dropped_self_target,
        &mut e.dropped_message_loss,
    ]
    .into_iter()
    .zip(&vals[0..6])
    .for_each(|(slot, &v)| *slot = v);
    let m = &mut s.moderation;
    [
        &mut m.pushed,
        &mut m.pulled,
        &mut m.rejected_by_gate,
        &mut m.signature_verifies,
        &mut m.signature_failures,
    ]
    .into_iter()
    .zip(&vals[6..11])
    .for_each(|(slot, &v)| *slot = v);
    let v4 = &mut s.votes;
    [
        &mut v4.lists_accepted,
        &mut v4.lists_rejected_inexperienced,
        &mut v4.votes_merged,
        &mut v4.ballot_evictions,
    ]
    .into_iter()
    .zip(&vals[11..15])
    .for_each(|(slot, &v)| *slot = v);
    let x = &mut s.voxpopuli;
    [
        &mut x.requests,
        &mut x.responses,
        &mut x.declines_bootstrapping,
    ]
    .into_iter()
    .zip(&vals[15..18])
    .for_each(|(slot, &v)| *slot = v);
    s.barter.exchanges = vals[18];
    s.barter.maxflow_evaluations = vals[19];
    s.pss.exchanges = vals[20];
    s.pss.failed_contacts = vals[21];
    let f = &mut s.faults;
    [
        &mut f.delayed,
        &mut f.reordered,
        &mut f.duplicated,
        &mut f.dedup_suppressed,
        &mut f.dropped_burst,
        &mut f.partitioned,
        &mut f.dropped_expired,
        &mut f.retries,
        &mut f.backoff_gaveups,
        &mut f.crash_restarts,
    ]
    .into_iter()
    .zip(&vals[22..32])
    .for_each(|(slot, &v)| *slot = v);
    for (k, nanos) in phases {
        s.phase_nanos.insert(format!("phase{k}"), nanos);
    }
    s
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec(any::<u64>(), 32..33),
        prop::collection::btree_map(0u8..5, any::<u64>(), 0..4),
    )
        .prop_map(|(vals, phases)| snapshot_from(&vals, phases))
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn default_is_identity(a in arb_snapshot()) {
        prop_assert_eq!(a.merged(&Snapshot::default()), a.clone());
        prop_assert_eq!(Snapshot::default().merged(&a), a);
    }

    #[test]
    fn json_roundtrips_exactly(a in arb_snapshot()) {
        prop_assert_eq!(Snapshot::from_json(&a.to_json()).unwrap(), a.clone());
        prop_assert_eq!(Snapshot::from_json(&a.to_json_compact()).unwrap(), a);
    }

    #[test]
    fn counters_only_strips_exactly_the_phases(a in arb_snapshot()) {
        let c = a.counters_only();
        prop_assert!(c.phase_nanos.is_empty());
        prop_assert_eq!(c.encounters, a.encounters);
        prop_assert_eq!(c.moderation, a.moderation);
        prop_assert_eq!(c.votes, a.votes);
        prop_assert_eq!(c.voxpopuli, a.voxpopuli);
        prop_assert_eq!(c.barter, a.barter);
        prop_assert_eq!(c.pss, a.pss);
        prop_assert_eq!(c.faults, a.faults);
    }
}
