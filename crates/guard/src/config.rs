//! Deterministic tuning for the guard plane.
//!
//! Every knob is an integer or a [`SimDuration`] — the guard draws no
//! randomness and does no floating-point arithmetic, so two runs with the
//! same config and seed are byte-identical regardless of thread count.
//! The default config is *inert* (`enabled == false`): the governor
//! admits everything and existing scenarios replay byte-for-byte. Only
//! the `seen_window` bound is always in force — it caps receiver dedup
//! state whether or not the rest of the guard is armed, and its default
//! matches the engine's historical hard-coded window.

use rvs_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Guard-plane configuration: validation windows, per-class token
/// buckets, bounded inboxes, and quarantine thresholds.
///
/// JSON-loadable for `rvs run --guard FILE.json`; a config file names
/// every knob (start from the JSON of [`GuardConfig::active`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct GuardConfig {
    /// Master switch. `false` (default) means the governor admits every
    /// message and takes no strikes — the plane is invisible except for
    /// the always-on `seen_window` bound.
    pub enabled: bool,
    /// Token-bucket capacity per `(peer, message class)` — the burst a
    /// peer may send on one surface before refills matter.
    pub bucket_capacity: u32,
    /// Tokens refilled per gossip round per `(peer, class)` bucket,
    /// saturating at `bucket_capacity`. LOCKSS-style rate limiting: the
    /// sustained per-round budget of any single peer.
    pub bucket_refill: u32,
    /// Bounded-inbox cap: in-flight deliveries a receiver will queue.
    /// Excess sends are dropped newest-first (a fixed, deterministic
    /// policy) and counted as `inbox_dropped`.
    pub inbox_cap: u32,
    /// Strikes (offense rejections) that trigger quarantine.
    pub strike_threshold: u32,
    /// Strikes forgiven per gossip round — honest peers whose occasional
    /// message is damaged in flight decay back to zero instead of
    /// accumulating toward quarantine.
    pub strike_decay: u32,
    /// First quarantine duration; doubles on each repeat offense.
    pub quarantine_base: SimDuration,
    /// Ceiling on the doubling quarantine duration.
    pub quarantine_cap: SimDuration,
    /// How far in the future a message timestamp may lie before it is
    /// rejected as `FutureTimestamp`. The simulation has no clock skew,
    /// so zero is exact for honest traffic.
    pub max_timestamp_skew: SimDuration,
    /// Replay window: a vote made more than this long ago is rejected as
    /// `StaleTimestamp`. Zero disables the check (honest vote lists
    /// legitimately carry old votes).
    pub replay_window: SimDuration,
    /// Sanity bound on a single BarterCast record's claimed KiB.
    pub max_record_kib: u64,
    /// Node/moderator ids up to `population + id_slack` are accepted —
    /// external moderators (crowd spam targets) live just past the trace
    /// population, and the slack keeps them addressable.
    pub id_slack: u32,
    /// Cap on the per-receiver seen-message-id dedup window (deterministic
    /// oldest-first eviction). Always in force; the default matches the
    /// engine's historical hard-coded window of 512.
    pub seen_window: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            enabled: false,
            bucket_capacity: 8,
            bucket_refill: 4,
            inbox_cap: 64,
            strike_threshold: 8,
            strike_decay: 2,
            quarantine_base: SimDuration::from_mins(30),
            quarantine_cap: SimDuration::from_hours(4),
            max_timestamp_skew: SimDuration::ZERO,
            replay_window: SimDuration::ZERO,
            max_record_kib: 1 << 40,
            id_slack: 16,
            seen_window: 512,
        }
    }
}

impl GuardConfig {
    /// The armed preset used by `rvs run --guard on` and the byzantine
    /// chaos scenarios: defaults with the master switch thrown.
    pub fn active() -> Self {
        GuardConfig {
            enabled: true,
            ..GuardConfig::default()
        }
    }

    /// True when the governor changes nothing observable: the master
    /// switch is off. (The `seen_window` bound still applies — at its
    /// default it reproduces the engine's historical behaviour exactly.)
    pub fn is_inert(&self) -> bool {
        !self.enabled
    }

    /// Quarantine duration for a peer offending for the
    /// `level`-th time (0-based): `base · 2^level`, capped.
    pub fn quarantine_duration(&self, level: u32) -> SimDuration {
        let doublings = level.min(16);
        let dur = self.quarantine_base.saturating_mul(1u64 << doublings);
        if dur > self.quarantine_cap {
            self.quarantine_cap
        } else {
            dur
        }
    }
}

/// Stable binary encoding: every field in declaration order. Changing
/// this layout is a checkpoint format change — bump
/// `rvs_checkpoint::FORMAT_VERSION`.
impl rvs_checkpoint::Persist for GuardConfig {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        enc.bool(self.enabled);
        enc.u32(self.bucket_capacity);
        enc.u32(self.bucket_refill);
        enc.u32(self.inbox_cap);
        enc.u32(self.strike_threshold);
        enc.u32(self.strike_decay);
        self.quarantine_base.persist(enc);
        self.quarantine_cap.persist(enc);
        self.max_timestamp_skew.persist(enc);
        self.replay_window.persist(enc);
        enc.u64(self.max_record_kib);
        enc.u32(self.id_slack);
        enc.u32(self.seen_window);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(GuardConfig {
            enabled: dec.bool()?,
            bucket_capacity: dec.u32()?,
            bucket_refill: dec.u32()?,
            inbox_cap: dec.u32()?,
            strike_threshold: dec.u32()?,
            strike_decay: dec.u32()?,
            quarantine_base: SimDuration::restore(dec)?,
            quarantine_cap: SimDuration::restore(dec)?,
            max_timestamp_skew: SimDuration::restore(dec)?,
            replay_window: SimDuration::restore(dec)?,
            max_record_kib: dec.u64()?,
            id_slack: dec.u32()?,
            seen_window: dec.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_checkpoint::{Decoder, Encoder, Persist};

    #[test]
    fn default_is_inert_active_is_not() {
        assert!(GuardConfig::default().is_inert());
        assert!(!GuardConfig::active().is_inert());
        assert_eq!(GuardConfig::default().seen_window, 512);
    }

    #[test]
    fn quarantine_doubles_then_caps() {
        let cfg = GuardConfig::default();
        assert_eq!(cfg.quarantine_duration(0), SimDuration::from_mins(30));
        assert_eq!(cfg.quarantine_duration(1), SimDuration::from_hours(1));
        assert_eq!(cfg.quarantine_duration(2), SimDuration::from_hours(2));
        assert_eq!(cfg.quarantine_duration(3), SimDuration::from_hours(4));
        // Past the cap, and far past any sane level, it stays pinned.
        assert_eq!(cfg.quarantine_duration(4), SimDuration::from_hours(4));
        assert_eq!(cfg.quarantine_duration(u32::MAX), cfg.quarantine_cap);
    }

    #[test]
    fn json_roundtrip() {
        let cfg = GuardConfig::active();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GuardConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // A config file missing a knob is a typed error, not a guess.
        assert!(serde_json::from_str::<GuardConfig>(r#"{"enabled": true}"#).is_err());
    }

    #[test]
    fn persist_roundtrip() {
        let cfg = GuardConfig {
            enabled: true,
            bucket_capacity: 7,
            bucket_refill: 3,
            inbox_cap: 9,
            strike_threshold: 5,
            strike_decay: 1,
            quarantine_base: SimDuration::from_secs(90),
            quarantine_cap: SimDuration::from_hours(2),
            max_timestamp_skew: SimDuration::from_secs(5),
            replay_window: SimDuration::from_days(7),
            max_record_kib: 12345,
            id_slack: 4,
            seen_window: 64,
        };
        let mut enc = Encoder::new();
        cfg.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = GuardConfig::restore(&mut dec).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(dec.remaining(), 0);
    }
}
