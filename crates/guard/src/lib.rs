//! Byzantine message plane: the receive-side defences every deployed
//! Tribler node needs before it can trust a wire message.
//!
//! The paper (§VI-C, §VII) argues BallotBox/VoxPopuli stay robust when
//! adversaries act *through the protocol*; this crate supplies the layer
//! underneath that argument — what happens when a peer does not even
//! speak the protocol correctly. It follows the LOCKSS observation
//! ("Preserving Peer Replicas By Rate-Limited Sampled Voting") that rate
//! limiting the sampling plane is itself a robustness mechanism, and the
//! secure-aggregation discipline of validating and *attributing* every
//! inbound record before it touches state:
//!
//! * [`reason`] — the typed rejection taxonomy ([`RejectReason`]) and the
//!   per-message-class budget axes ([`MessageClass`]). Every inbound
//!   message is totally classified: accepted, or mapped to exactly one
//!   reason. Validation never panics.
//! * [`config`] — [`GuardConfig`], the deterministic knobs: token-bucket
//!   capacity/refill per class, bounded-inbox cap, strike thresholds and
//!   decay, capped-doubling quarantine durations, timestamp windows, and
//!   the seen-window bound on receiver dedup state.
//! * [`governor`] — [`Governor`], the per-peer rate/budget state machine:
//!   token buckets, strike accounting, and quarantine with capped
//!   exponential backoff. Quarantine state is `Persist`-covered so
//!   checkpoints restore it byte-exactly; crash-reset wipes it as
//!   volatile protocol state.
//!
//! The governor is pure bookkeeping — it draws no randomness and reads no
//! clock beyond the [`rvs_sim::SimTime`] it is handed — so the scenario
//! engine stays byte-identical across thread counts and resume points.

pub mod config;
pub mod governor;
pub mod reason;

pub use config::GuardConfig;
pub use governor::{Governor, PeerGuard};
pub use reason::{MessageClass, RejectReason};
