//! The per-peer rate/budget governor: token buckets, strike accounting,
//! and capped-doubling quarantine.
//!
//! One [`PeerGuard`] exists per population member; the [`Governor`] owns
//! the vector plus the guard-plane counters. All mutation happens in the
//! serial apply/encounter phase of the round engine — the governor is
//! never touched from the parallel planning shards — so its state
//! evolution is independent of thread count by construction.
//!
//! Determinism contract: the governor draws no randomness, reads no wall
//! clock, and iterates peers in index order. Its full state is
//! `Persist`-covered (checkpoints restore quarantines mid-sentence);
//! `crash_reset` wipes a single peer's record, modelling guard state as
//! volatile — a rebooted node starts with a clean slate.

use crate::config::GuardConfig;
use crate::reason::{MessageClass, RejectReason};
use rvs_sim::{NodeId, SimTime};
use rvs_telemetry::GuardCounters;

/// Per-peer guard state: one token bucket per message class, the strike
/// count, and any active quarantine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerGuard {
    /// Remaining tokens per message class (indexed by
    /// [`MessageClass::index`]).
    tokens: [u32; MessageClass::COUNT],
    /// Offense strikes accumulated since the last decay/quarantine.
    strikes: u32,
    /// When the active quarantine ends, if one is active.
    quarantine_until: Option<SimTime>,
    /// How many times this peer has been quarantined (drives the capped
    /// doubling of successive quarantine durations). Survives release so
    /// repeat offenders sit out longer; wiped only by crash-reset.
    quarantine_level: u32,
}

impl PeerGuard {
    /// A fresh record: full buckets, no strikes, no quarantine.
    fn fresh(cfg: &GuardConfig) -> Self {
        PeerGuard {
            tokens: [cfg.bucket_capacity; MessageClass::COUNT],
            strikes: 0,
            quarantine_until: None,
            quarantine_level: 0,
        }
    }

    /// Is this peer quarantined at `now`?
    pub fn is_quarantined(&self, now: SimTime) -> bool {
        match self.quarantine_until {
            Some(until) => now < until,
            None => false,
        }
    }

    /// Remaining tokens for `class`.
    pub fn tokens(&self, class: MessageClass) -> u32 {
        self.tokens[class.index()]
    }

    /// Current strike count.
    pub fn strikes(&self) -> u32 {
        self.strikes
    }

    /// Times this peer has entered quarantine.
    pub fn quarantine_level(&self) -> u32 {
        self.quarantine_level
    }
}

/// Stable binary encoding: buckets, strikes, quarantine end, level.
impl rvs_checkpoint::Persist for PeerGuard {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.tokens.persist(enc);
        enc.u32(self.strikes);
        self.quarantine_until.persist(enc);
        enc.u32(self.quarantine_level);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(PeerGuard {
            tokens: <[u32; MessageClass::COUNT]>::restore(dec)?,
            strikes: dec.u32()?,
            quarantine_until: Option::restore(dec)?,
            quarantine_level: dec.u32()?,
        })
    }
}

/// The population-wide rate/budget governor.
#[derive(Debug, Clone)]
pub struct Governor {
    cfg: GuardConfig,
    peers: Vec<PeerGuard>,
    counters: GuardCounters,
}

impl Governor {
    /// A governor over `n` peers, every record fresh.
    pub fn new(n: usize, cfg: GuardConfig) -> Self {
        Governor {
            peers: vec![PeerGuard::fresh(&cfg); n],
            cfg,
            counters: GuardCounters::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GuardConfig {
        &self.cfg
    }

    /// Replace the configuration and re-arm every peer record (buckets
    /// refilled to the new capacity, strikes and quarantines cleared).
    /// Call before the run starts, never mid-round.
    pub fn set_config(&mut self, cfg: GuardConfig) {
        self.cfg = cfg;
        for p in &mut self.peers {
            *p = PeerGuard::fresh(&self.cfg);
        }
    }

    /// Is the plane armed?
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// True for an empty population.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Guard-plane counters (rejections by reason, quarantine gauges).
    pub fn counters(&self) -> &GuardCounters {
        &self.counters
    }

    /// Mutable counters, for the engine's inbox/attack accounting.
    pub fn counters_mut(&mut self) -> &mut GuardCounters {
        &mut self.counters
    }

    /// Per-peer record (read-only; tests and audits).
    pub fn peer(&self, peer: NodeId) -> &PeerGuard {
        &self.peers[peer.index()]
    }

    /// Start-of-round housekeeping: refill token buckets (saturating at
    /// capacity), decay strikes, and release quarantines that have
    /// served their time. Returns the peers released *this* round, in
    /// index order — the engine re-validates their previously accepted
    /// state on release. No-op (empty vec) while the plane is disabled.
    pub fn on_round(&mut self, now: SimTime) -> Vec<NodeId> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let mut released = Vec::new();
        for (idx, p) in self.peers.iter_mut().enumerate() {
            if let Some(until) = p.quarantine_until {
                if now < until {
                    self.counters.quarantine_rounds += 1;
                    continue;
                }
                // Served: clean slate except the level, which drives the
                // doubling of the next quarantine.
                p.quarantine_until = None;
                p.strikes = 0;
                p.tokens = [self.cfg.bucket_capacity; MessageClass::COUNT];
                self.counters.quarantines_released += 1;
                released.push(NodeId::from_index(idx));
                continue;
            }
            for t in &mut p.tokens {
                *t = t
                    .saturating_add(self.cfg.bucket_refill)
                    .min(self.cfg.bucket_capacity);
            }
            p.strikes = p.strikes.saturating_sub(self.cfg.strike_decay);
        }
        released
    }

    /// Is `peer` quarantined at `now`? Always false while disabled.
    pub fn is_quarantined(&self, peer: NodeId, now: SimTime) -> bool {
        self.cfg.enabled && self.peers[peer.index()].is_quarantined(now)
    }

    /// Peers currently quarantined (the `quarantined_now` gauge).
    pub fn quarantined_count(&self, now: SimTime) -> u64 {
        if !self.cfg.enabled {
            return 0;
        }
        self.peers.iter().filter(|p| p.is_quarantined(now)).count() as u64
    }

    /// Admission control for one message from `sender` on `class`:
    /// quarantine check, then token spend. `Ok(())` admits the message
    /// to validation; the caller records acceptance or rejection
    /// afterwards. Always admits while disabled.
    pub fn admit(
        &mut self,
        sender: NodeId,
        class: MessageClass,
        now: SimTime,
    ) -> Result<(), RejectReason> {
        if !self.cfg.enabled {
            return Ok(());
        }
        let p = &mut self.peers[sender.index()];
        if p.is_quarantined(now) {
            return Err(RejectReason::Quarantined);
        }
        let t = &mut p.tokens[class.index()];
        if *t == 0 {
            return Err(RejectReason::RateLimited);
        }
        *t -= 1;
        Ok(())
    }

    /// Count one accepted message.
    pub fn note_accepted(&mut self) {
        self.counters.accepted += 1;
    }

    /// Attribute one rejection of a message from `sender` to `reason`:
    /// bump the per-reason counter and, for offenses, take a strike
    /// (which may trip quarantine). No-op while disabled — the engine
    /// never rejects when the plane is down.
    pub fn note_rejection(&mut self, sender: NodeId, reason: RejectReason, now: SimTime) {
        if !self.cfg.enabled {
            return;
        }
        let c = &mut self.counters;
        match reason {
            RejectReason::ListTooLong => c.rejected_list_too_long += 1,
            RejectReason::DuplicateEntry => c.rejected_duplicate_entry += 1,
            RejectReason::FutureTimestamp => c.rejected_future_timestamp += 1,
            RejectReason::StaleTimestamp => c.rejected_stale_timestamp += 1,
            RejectReason::BadSignature => c.rejected_bad_signature += 1,
            RejectReason::InvalidNode => c.rejected_invalid_node += 1,
            RejectReason::SelfReference => c.rejected_self_reference += 1,
            RejectReason::HearsayRecord => c.rejected_hearsay_record += 1,
            RejectReason::Oversized => c.rejected_oversized += 1,
            RejectReason::Malformed => c.rejected_malformed += 1,
            RejectReason::RateLimited => c.rejected_rate_limited += 1,
            RejectReason::Quarantined => c.rejected_quarantined += 1,
            RejectReason::InboxOverflow => c.inbox_dropped += 1,
        }
        if reason.is_offense() {
            self.strike(sender, now);
        }
    }

    /// One strike against `sender`; at the threshold the peer enters
    /// quarantine for `quarantine_duration(level)` and the level rises.
    fn strike(&mut self, sender: NodeId, now: SimTime) {
        self.counters.strikes += 1;
        let threshold = self.cfg.strike_threshold;
        let p = &mut self.peers[sender.index()];
        p.strikes = p.strikes.saturating_add(1);
        if p.strikes >= threshold {
            let dur = self.cfg.quarantine_duration(p.quarantine_level);
            p.quarantine_until = Some(now.saturating_add(dur));
            p.quarantine_level = p.quarantine_level.saturating_add(1);
            p.strikes = 0;
            self.counters.quarantines_started += 1;
        }
    }

    /// Crash-restart semantics: guard state is volatile, so a rebooted
    /// `peer` gets a completely fresh record (level included).
    pub fn crash_reset(&mut self, peer: NodeId) {
        self.peers[peer.index()] = PeerGuard::fresh(&self.cfg);
    }
}

/// Stable binary encoding: config, per-peer records in index order,
/// counters. Changing this layout is a checkpoint format change — bump
/// `rvs_checkpoint::FORMAT_VERSION`.
impl rvs_checkpoint::Persist for Governor {
    fn persist(&self, enc: &mut rvs_checkpoint::Encoder) {
        self.cfg.persist(enc);
        self.peers.persist(enc);
        self.counters.persist(enc);
    }

    fn restore(dec: &mut rvs_checkpoint::Decoder<'_>) -> Result<Self, rvs_checkpoint::DecodeError> {
        Ok(Governor {
            cfg: GuardConfig::restore(dec)?,
            peers: Vec::restore(dec)?,
            counters: GuardCounters::restore(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvs_checkpoint::{Decoder, Encoder, Persist};
    use rvs_sim::SimDuration;

    fn armed(n: usize) -> Governor {
        Governor::new(n, GuardConfig::active())
    }

    #[test]
    fn disabled_governor_admits_everything() {
        let mut g = Governor::new(2, GuardConfig::default());
        for _ in 0..1000 {
            assert_eq!(
                g.admit(NodeId(0), MessageClass::VoteList, SimTime::ZERO),
                Ok(())
            );
        }
        assert!(!g.is_quarantined(NodeId(0), SimTime::ZERO));
        assert!(g.on_round(SimTime::ZERO).is_empty());
        g.note_rejection(NodeId(0), RejectReason::BadSignature, SimTime::ZERO);
        assert_eq!(g.counters().total(), 0);
    }

    #[test]
    fn bucket_drains_and_refills_to_capacity() {
        let mut g = armed(1);
        let cap = g.config().bucket_capacity;
        let now = SimTime::ZERO;
        for _ in 0..cap {
            assert_eq!(g.admit(NodeId(0), MessageClass::VoteList, now), Ok(()));
        }
        assert_eq!(
            g.admit(NodeId(0), MessageClass::VoteList, now),
            Err(RejectReason::RateLimited)
        );
        // Other classes keep their own budget.
        assert_eq!(g.admit(NodeId(0), MessageClass::TopK, now), Ok(()));
        // One round refills `bucket_refill`, many rounds saturate at cap.
        g.on_round(now);
        assert_eq!(
            g.peer(NodeId(0)).tokens(MessageClass::VoteList),
            g.config().bucket_refill
        );
        for _ in 0..10 {
            g.on_round(now);
        }
        assert_eq!(g.peer(NodeId(0)).tokens(MessageClass::VoteList), cap);
    }

    #[test]
    fn strikes_trip_quarantine_and_double() {
        let mut g = armed(2);
        let now = SimTime::from_hours(1);
        let threshold = g.config().strike_threshold;
        for _ in 0..threshold {
            g.note_rejection(NodeId(1), RejectReason::BadSignature, now);
        }
        assert!(g.is_quarantined(NodeId(1), now));
        assert_eq!(g.counters().quarantines_started, 1);
        assert_eq!(g.quarantined_count(now), 1);
        assert!(!g.is_quarantined(NodeId(0), now));
        // Still quarantined just before the base duration elapses...
        let base = g.config().quarantine_base;
        let almost = now.saturating_add(base - SimDuration::from_millis(1));
        assert!(g.is_quarantined(NodeId(1), almost));
        assert!(g.on_round(almost).is_empty());
        // ...and released exactly at it, with full buckets.
        let due = now.saturating_add(base);
        assert_eq!(g.on_round(due), vec![NodeId(1)]);
        assert_eq!(g.counters().quarantines_released, 1);
        assert!(!g.is_quarantined(NodeId(1), due));
        assert_eq!(
            g.peer(NodeId(1)).tokens(MessageClass::BarterRecords),
            g.config().bucket_capacity
        );
        // A repeat offense quarantines for twice as long.
        for _ in 0..threshold {
            g.note_rejection(NodeId(1), RejectReason::ListTooLong, due);
        }
        let almost_doubled =
            due.saturating_add(base.saturating_mul(2) - SimDuration::from_millis(1));
        assert!(g.is_quarantined(NodeId(1), almost_doubled));
        let doubled = due.saturating_add(base.saturating_mul(2));
        assert!(!g.on_round(doubled).is_empty());
    }

    #[test]
    fn strike_decay_forgives_honest_peers() {
        let mut g = armed(1);
        let now = SimTime::ZERO;
        // One offense per round never reaches the threshold of 8 while
        // decay removes 2 per round.
        for _ in 0..50 {
            g.note_rejection(NodeId(0), RejectReason::DuplicateEntry, now);
            g.on_round(now);
        }
        assert!(!g.is_quarantined(NodeId(0), now));
        assert_eq!(g.counters().quarantines_started, 0);
    }

    #[test]
    fn non_offense_rejections_never_strike() {
        let mut g = armed(1);
        let now = SimTime::ZERO;
        for _ in 0..100 {
            g.note_rejection(NodeId(0), RejectReason::Quarantined, now);
            g.note_rejection(NodeId(0), RejectReason::InboxOverflow, now);
        }
        assert_eq!(g.counters().strikes, 0);
        assert!(!g.is_quarantined(NodeId(0), now));
        assert_eq!(g.counters().rejected_quarantined, 100);
        assert_eq!(g.counters().inbox_dropped, 100);
    }

    #[test]
    fn quarantined_sender_is_refused_admission() {
        let mut g = armed(1);
        let now = SimTime::ZERO;
        for _ in 0..g.config().strike_threshold {
            g.note_rejection(NodeId(0), RejectReason::Oversized, now);
        }
        assert_eq!(
            g.admit(NodeId(0), MessageClass::Moderations, now),
            Err(RejectReason::Quarantined)
        );
    }

    #[test]
    fn crash_reset_wipes_the_record() {
        let mut g = armed(2);
        let now = SimTime::ZERO;
        for _ in 0..g.config().strike_threshold {
            g.note_rejection(NodeId(1), RejectReason::HearsayRecord, now);
        }
        assert!(g.is_quarantined(NodeId(1), now));
        g.crash_reset(NodeId(1));
        assert!(!g.is_quarantined(NodeId(1), now));
        assert_eq!(g.peer(NodeId(1)).quarantine_level(), 0);
        assert_eq!(g.peer(NodeId(1)).strikes(), 0);
    }

    #[test]
    fn persist_roundtrip_mid_quarantine() {
        let mut g = armed(3);
        let now = SimTime::from_mins(7);
        g.admit(NodeId(0), MessageClass::VoteList, now).unwrap();
        for _ in 0..g.config().strike_threshold {
            g.note_rejection(NodeId(2), RejectReason::FutureTimestamp, now);
        }
        g.note_accepted();
        let mut enc = Encoder::new();
        g.persist(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Governor::restore(&mut dec).unwrap();
        assert_eq!(dec.remaining(), 0);
        assert_eq!(back.counters(), g.counters());
        assert_eq!(back.peer(NodeId(0)), g.peer(NodeId(0)));
        assert_eq!(back.peer(NodeId(2)), g.peer(NodeId(2)));
        assert!(back.is_quarantined(NodeId(2), now));
        // Re-encoding the restored governor is byte-identical.
        let mut enc2 = Encoder::new();
        back.persist(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes);
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut dec = Decoder::new(&[1, 2, 3]);
        assert!(Governor::restore(&mut dec).is_err());
    }
}
