//! The rejection taxonomy and message-class axes of the guard plane.
//!
//! Every inbound wire message is *totally classified*: it is either
//! accepted or mapped to exactly one [`RejectReason`]. The taxonomy is
//! deliberately flat and closed — telemetry keeps one counter per reason,
//! so an operator can read a [`rvs_telemetry::Snapshot`] and account for
//! every message a hostile peer sent.

/// The protocol surface a message arrived on. Token buckets are kept per
/// `(peer, class)` pair so a flood on one surface cannot starve another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MessageClass {
    /// BallotBox vote lists (`core`).
    VoteList,
    /// VoxPopuli top-K responses (`core`).
    TopK,
    /// ModerationCast moderation lists (`modcast`).
    Moderations,
    /// BarterCast transfer records (`bartercast`).
    BarterRecords,
    /// Peer-sampling view exchanges (`pss`).
    PssView,
}

impl MessageClass {
    /// Number of message classes (token-bucket array width).
    pub const COUNT: usize = 5;

    /// Every class, in bucket order.
    pub const ALL: [MessageClass; MessageClass::COUNT] = [
        MessageClass::VoteList,
        MessageClass::TopK,
        MessageClass::Moderations,
        MessageClass::BarterRecords,
        MessageClass::PssView,
    ];

    /// Dense index of this class into per-peer bucket arrays.
    pub fn index(self) -> usize {
        match self {
            MessageClass::VoteList => 0,
            MessageClass::TopK => 1,
            MessageClass::Moderations => 2,
            MessageClass::BarterRecords => 3,
            MessageClass::PssView => 4,
        }
    }

    /// Stable lowercase name (telemetry/CLI output).
    pub fn as_str(self) -> &'static str {
        match self {
            MessageClass::VoteList => "vote_list",
            MessageClass::TopK => "topk",
            MessageClass::Moderations => "moderations",
            MessageClass::BarterRecords => "barter_records",
            MessageClass::PssView => "pss_view",
        }
    }
}

/// Why an inbound message was refused. One counter per variant lives in
/// [`rvs_telemetry::GuardCounters`]; the mapping is exercised by the
/// wire-fuzz harness, which asserts total classification (never a panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// List exceeds its wire bound (vote list > `max_votes_per_msg`,
    /// moderation list > `max_list`, top-K > `k`, view > `view_size`).
    ListTooLong,
    /// The same key (moderator, moderation id, edge, peer) appears twice
    /// in one message — duplicate-entry stuffing.
    DuplicateEntry,
    /// A timestamp lies further in the future than the allowed skew.
    FutureTimestamp,
    /// A timestamp fell out of the configured replay window.
    StaleTimestamp,
    /// A signature check failed against the claimed signer.
    BadSignature,
    /// A node/moderator id outside the known population (plus slack for
    /// external moderators).
    InvalidNode,
    /// A record whose two endpoints are the same node (self-barter).
    SelfReference,
    /// A BarterCast record not incident to the peer reporting it —
    /// second-hand hearsay forwarded as first-hand.
    HearsayRecord,
    /// A numeric field inflated past its sanity bound (e.g. claimed KiB
    /// transferred).
    Oversized,
    /// The bytes did not decode as the claimed message at all.
    Malformed,
    /// The sender's token bucket for this message class was empty.
    RateLimited,
    /// The sender is currently quarantined.
    Quarantined,
    /// The receiver's bounded inbox was full (fixed drop-newest policy).
    InboxOverflow,
}

impl RejectReason {
    /// Stable lowercase name (matches the telemetry counter suffix).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::ListTooLong => "list_too_long",
            RejectReason::DuplicateEntry => "duplicate_entry",
            RejectReason::FutureTimestamp => "future_timestamp",
            RejectReason::StaleTimestamp => "stale_timestamp",
            RejectReason::BadSignature => "bad_signature",
            RejectReason::InvalidNode => "invalid_node",
            RejectReason::SelfReference => "self_reference",
            RejectReason::HearsayRecord => "hearsay_record",
            RejectReason::Oversized => "oversized",
            RejectReason::Malformed => "malformed",
            RejectReason::RateLimited => "rate_limited",
            RejectReason::Quarantined => "quarantined",
            RejectReason::InboxOverflow => "inbox_overflow",
        }
    }

    /// Does this rejection count as an *offense* by the sender (a strike
    /// toward quarantine)? Being quarantined or hitting a full inbox is a
    /// consequence of receiver state, not new evidence of misbehaviour.
    pub fn is_offense(self) -> bool {
        !matches!(
            self,
            RejectReason::Quarantined | RejectReason::InboxOverflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_stable() {
        for (i, c) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(MessageClass::ALL.len(), MessageClass::COUNT);
    }

    #[test]
    fn offense_classification() {
        assert!(RejectReason::BadSignature.is_offense());
        assert!(RejectReason::RateLimited.is_offense());
        assert!(!RejectReason::Quarantined.is_offense());
        assert!(!RejectReason::InboxOverflow.is_offense());
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<&str> = [
            RejectReason::ListTooLong,
            RejectReason::DuplicateEntry,
            RejectReason::FutureTimestamp,
            RejectReason::StaleTimestamp,
            RejectReason::BadSignature,
            RejectReason::InvalidNode,
            RejectReason::SelfReference,
            RejectReason::HearsayRecord,
            RejectReason::Oversized,
            RejectReason::Malformed,
            RejectReason::RateLimited,
            RejectReason::Quarantined,
            RejectReason::InboxOverflow,
        ]
        .iter()
        .map(|r| r.as_str())
        .collect();
        assert_eq!(names.len(), 13);
    }
}
