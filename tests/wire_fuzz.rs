//! Wire-fuzz corpus (byzantine message plane): hostile bytes and
//! structured mutations against every inbound gate.
//!
//! Three properties, each proven over proptest-driven corpora:
//!
//! 1. **Decode totality** — `Persist::restore` over arbitrary or
//!    bit-flipped bytes returns a typed `DecodeError`, never panics,
//!    and never over-allocates (the decoder bounds every length claim
//!    by the bytes remaining).
//! 2. **Gate totality** — every `validate_*` gate classifies arbitrary
//!    structured payloads, including every `Malformer` mutation, into
//!    `Ok` or a typed `RejectReason`; it never panics and is
//!    deterministic (same input, same verdict).
//! 3. **No false positives** — honestly produced payloads always pass,
//!    so the gates reject attackers, not the protocol.

use proptest::prelude::*;
use robust_vote_sampling::attacks::{Flooder, Malformer};
use robust_vote_sampling::bartercast::{validate_records, Record};
use robust_vote_sampling::checkpoint::{Decoder, Encoder, Persist};
use robust_vote_sampling::core::{validate_topk, validate_vote_list, TopKList, Vote, VoteEntry};
use robust_vote_sampling::guard::{Governor, GuardConfig, MessageClass, RejectReason};
use robust_vote_sampling::modcast::{
    validate_moderation_list, ContentQuality, KeyRegistry, Moderation,
};
use robust_vote_sampling::pss::validate_view;
use robust_vote_sampling::scenario::Checkpoint;
use rvs_sim::{DetRng, ModeratorId, NodeId, SimTime, SwarmId};

/// Population every gate is parameterized with.
const POP: usize = 24;
/// VoxPopuli K used by the top-K gate.
const K: usize = 5;
/// Receiver-side "now" for timestamp checks.
const NOW: SimTime = SimTime::from_hours(12);

fn honest_votes(rng: &mut DetRng) -> Vec<VoteEntry> {
    let n = rng.below(8) as usize;
    (0..n)
        .map(|i| VoteEntry {
            moderator: ModeratorId::from_index(i),
            vote: if rng.below(2) == 0 {
                Vote::Positive
            } else {
                Vote::Negative
            },
            made_at: SimTime::from_millis(rng.below(NOW.as_millis())),
        })
        .collect()
}

fn honest_moderations(registry: &KeyRegistry, rng: &mut DetRng) -> Vec<Moderation> {
    let n = rng.below(5) as usize;
    (0..n)
        .map(|i| {
            Moderation::new(
                registry,
                ModeratorId::from_index(i),
                rng.below(100) as u32,
                SwarmId::from_index(rng.below(16) as usize),
                SimTime::from_millis(rng.below(NOW.as_millis())),
                if rng.below(4) == 0 {
                    ContentQuality::Spam
                } else {
                    ContentQuality::Genuine
                },
            )
        })
        .collect()
}

fn honest_records(reporter: NodeId, rng: &mut DetRng) -> Vec<Record> {
    let n = rng.below(6) as usize;
    (0..n)
        .map(|i| {
            let other = NodeId::from_index((reporter.index() + 1 + i) % POP);
            let kib = rng.below(1 << 20);
            if rng.below(2) == 0 {
                Record {
                    from: reporter,
                    to: other,
                    kib,
                }
            } else {
                Record {
                    from: other,
                    to: reporter,
                    kib,
                }
            }
        })
        .collect()
}

fn honest_topk(rng: &mut DetRng) -> TopKList {
    let n = rng.below(K as u64 + 1) as usize;
    TopKList {
        ranked: (0..n).map(ModeratorId::from_index).collect(),
    }
}

fn honest_view(rng: &mut DetRng) -> Vec<NodeId> {
    let n = rng.below(12) as usize;
    (0..n).map(NodeId::from_index).collect()
}

/// A structurally arbitrary (not merely malformed-from-honest) payload
/// generator: wild ids, wild timestamps, duplicates — everything the
/// wire could carry.
fn garbage_votes(rng: &mut DetRng) -> Vec<VoteEntry> {
    let n = rng.below(12) as usize;
    (0..n)
        .map(|_| VoteEntry {
            moderator: ModeratorId::from_index(rng.below(u32::MAX as u64) as usize),
            vote: if rng.below(2) == 0 {
                Vote::Positive
            } else {
                Vote::Negative
            },
            made_at: SimTime::from_millis(rng.below(u64::MAX / 2)),
        })
        .collect()
}

/// Run every gate over the given payloads; assert each verdict is
/// reproducible (the gates are pure). Returning at all is the totality
/// property — a panic fails the test.
#[allow(clippy::type_complexity)]
fn classify(
    registry: &KeyRegistry,
    reporter: NodeId,
    votes: &[VoteEntry],
    mods: &[Moderation],
    recs: &[Record],
    topk: &TopKList,
    view: &[NodeId],
) -> [Result<(), RejectReason>; 5] {
    let gcfg = GuardConfig::active();
    let verdicts = [
        validate_vote_list(
            votes,
            POP,
            POP,
            NOW,
            gcfg.max_timestamp_skew,
            gcfg.replay_window,
        ),
        validate_moderation_list(mods, registry, 16, POP, NOW, gcfg.max_timestamp_skew),
        validate_records(recs, reporter, 2 * POP, POP, 1 << 20),
        validate_topk(topk, K, POP),
        validate_view(view, POP, 20),
    ];
    let again = [
        validate_vote_list(
            votes,
            POP,
            POP,
            NOW,
            gcfg.max_timestamp_skew,
            gcfg.replay_window,
        ),
        validate_moderation_list(mods, registry, 16, POP, NOW, gcfg.max_timestamp_skew),
        validate_records(recs, reporter, 2 * POP, POP, 1 << 20),
        validate_topk(topk, K, POP),
        validate_view(view, POP, 20),
    ];
    assert_eq!(verdicts, again, "a validation gate is nondeterministic");
    verdicts
}

proptest! {
    /// Arbitrary bytes through every `Persist::restore` the wire or the
    /// checkpoint file can reach: typed error or valid value, never a
    /// panic, never a hostile-length allocation.
    #[test]
    fn arbitrary_bytes_decode_to_typed_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        let _ = GuardConfig::restore(&mut Decoder::new(&bytes));
        let _ = Governor::restore(&mut Decoder::new(&bytes));
        let _ = Flooder::restore(&mut Decoder::new(&bytes));
        let _ = Malformer::restore(&mut Decoder::new(&bytes));
        let _ = VoteEntry::restore(&mut Decoder::new(&bytes));
        let _ = Moderation::restore(&mut Decoder::new(&bytes));
        let _ = Record::restore(&mut Decoder::new(&bytes));
        let _ = TopKList::restore(&mut Decoder::new(&bytes));
        let _ = Checkpoint::from_bytes(bytes.clone());
    }

    /// A single flipped bit in an honest guard-plane encoding decodes to
    /// either a typed error or a structurally valid (if wrong) value —
    /// never a panic. This is the checkpoint-corruption surface.
    #[test]
    fn bit_flipped_guard_encoding_never_panics(seed in any::<u64>(), flip in any::<usize>()) {
        let mut governor = Governor::new(POP, GuardConfig::active());
        // Put real state behind the encoding: spent tokens, strikes, an
        // active quarantine.
        let offender = NodeId::from_index((seed % POP as u64) as usize);
        for _ in 0..12 {
            let _ = governor.admit(offender, MessageClass::VoteList, NOW);
        }
        for _ in 0..GuardConfig::active().strike_threshold {
            governor.note_rejection(offender, RejectReason::RateLimited, NOW);
        }
        let mut enc = Encoder::new();
        governor.persist(&mut enc);
        GuardConfig::active().persist(&mut enc);
        Flooder::new((0..4).map(NodeId::from_index), 12).persist(&mut enc);
        Malformer::new(100).persist(&mut enc);
        let mut bytes = enc.into_bytes();

        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);

        let mut dec = Decoder::new(&bytes);
        let _ = Governor::restore(&mut dec)
            .and_then(|_| GuardConfig::restore(&mut dec))
            .and_then(|_| Flooder::restore(&mut dec))
            .and_then(|_| Malformer::restore(&mut dec))
            .and_then(|_| dec.finish());
    }

    /// Every Malformer mutation of every honest payload shape, plus raw
    /// garbage payloads, through every gate: total classification.
    #[test]
    fn malformer_mutations_classify_totally(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let registry = KeyRegistry::new(POP, seed ^ 0x5EED);
        let malformer = Malformer::new(1000);
        let reporter = NodeId::from_index(rng.below(POP as u64) as usize);

        for _ in 0..8 {
            let mut votes = honest_votes(&mut rng);
            malformer.mutate_votes(&mut votes, NOW, &mut rng);
            let mut mods = honest_moderations(&registry, &mut rng);
            malformer.mutate_moderations(&mut mods, NOW, &mut rng);
            let mut recs = honest_records(reporter, &mut rng);
            malformer.mutate_records(&mut recs, reporter, &mut rng);
            let mut topk = honest_topk(&mut rng);
            malformer.mutate_topk(&mut topk, &mut rng);
            let view = honest_view(&mut rng);
            let _ = classify(&registry, reporter, &votes, &mods, &recs, &topk, &view);

            let wild = garbage_votes(&mut rng);
            let _ = classify(&registry, reporter, &wild, &mods, &recs, &topk, &view);
        }
    }

    /// Honest payloads always pass every gate: under an attack-free wire
    /// the guard plane is invisible.
    #[test]
    fn honest_payloads_always_pass(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        let registry = KeyRegistry::new(POP, seed ^ 0x5EED);
        let reporter = NodeId::from_index(rng.below(POP as u64) as usize);
        let votes = honest_votes(&mut rng);
        let mods = honest_moderations(&registry, &mut rng);
        let recs = honest_records(reporter, &mut rng);
        let topk = honest_topk(&mut rng);
        let view = honest_view(&mut rng);
        for verdict in classify(&registry, reporter, &votes, &mods, &recs, &topk, &view) {
            prop_assert_eq!(verdict, Ok(()), "a gate rejected honest traffic");
        }
    }
}
