//! Differential proof that the sharded round engine is byte-identical to
//! the serial engine at every thread count.
//!
//! Each scenario runs once at 1 thread (the zero-worker inline path) and
//! again at 2, 4, and 8 threads, through the full stack: trace replay,
//! windowed BitTorrent swarms, the sharded gossip send phase, BarterCast,
//! ModerationCast, vote sampling, and — in the churn and chaos variants —
//! the fault-injection plane with retry/backoff. The runs must agree on a
//! fingerprint that captures every observable the system exposes:
//!
//! * the full telemetry counter snapshot (compact JSON bytes),
//! * every node's displayed moderator ranking and ballot voter count,
//! * the exact `f64::to_bits` pattern of every pairwise subjective
//!   contribution (no epsilon: reputation must match to the last bit),
//! * the ground-truth transfer ledger total and the in-flight count.
//!
//! Any scheduling leak — a shared RNG stream keyed by thread instead of
//! peer, a merge order that depends on completion order, a counter
//! incremented off the canonical path — shows up here as a byte diff.

use robust_vote_sampling::faults::{
    BurstLoss, CrashSpec, FaultConfig, FaultSchedule, PartitionSpec, RetryConfig,
};
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;
use std::fmt::Write as _;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Everything observable about a finished run, as comparable text.
fn fingerprint(system: &System) -> String {
    let mut out = String::new();
    out.push_str(
        &system
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
    );
    out.push('\n');
    let n = system.trace_peer_count();
    for i in 0..n {
        let node = NodeId::from_index(i);
        let _ = writeln!(
            out,
            "{node} ranking={:?} voters={}",
            system.display_ranking(node),
            system.votes().ballot(node).unique_voters()
        );
    }
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let c = system.contribution_mib(NodeId::from_index(i), NodeId::from_index(j));
            if c != 0.0 {
                let _ = writeln!(out, "contrib {i}->{j} bits={:016x}", c.to_bits());
            }
        }
    }
    let _ = writeln!(
        out,
        "ledger_kib={} in_flight={}",
        system.net().ledger().total_kib(),
        system.in_flight()
    );
    out
}

/// Run the fig6 scenario under `schedule` with `threads` workers, fully
/// audited, sampling the observer mid-run so window materialization at
/// observer boundaries is exercised too.
fn run(peers: usize, hours: u64, seed: u64, schedule: FaultSchedule, threads: usize) -> String {
    let trace = TraceGenConfig::quick(peers, SimDuration::from_hours(hours)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::with_faults(trace, protocol, setup, seed, schedule);
    system.set_threads(threads);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours((hours / 3).max(1)),
        |_, _| {},
    );
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations at {threads} threads (seed {seed})"
    );
    let acc = system.ordering_accuracy(&m);
    format!("accuracy={}\n{}", acc.to_bits(), fingerprint(&system))
}

/// Assert the serial twin and every parallel twin produce the same bytes.
fn assert_thread_invariant(
    label: &str,
    peers: usize,
    hours: u64,
    seeds: &[u64],
    mk: fn() -> FaultSchedule,
) {
    for &seed in seeds {
        let serial = run(peers, hours, seed, mk(), 1);
        for threads in THREAD_COUNTS {
            let parallel = run(peers, hours, seed, mk(), threads);
            assert_eq!(
                serial, parallel,
                "{label}: seed {seed} diverged at {threads} threads"
            );
        }
    }
}

/// A mid-strength schedule exercising loss + retry/backoff (the serial
/// resend path interleaved with the parallel send phase).
fn churn_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            loss: 0.15,
            retry: Some(RetryConfig::default()),
            ..FaultConfig::default()
        },
        partitions: vec![],
        crashes: vec![],
    }
}

/// The chaos-suite acceptance shape, shrunk to differential-test size:
/// latency + jitter (reordering), burst loss, duplication, one partition,
/// two crash-restarts, retry/backoff.
fn chaos_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            base_latency_ms: 5_000,
            jitter_spread: 1.0,
            loss: 0.0,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.3, 8.0)),
            retry: Some(RetryConfig::default()),
        },
        partitions: vec![PartitionSpec {
            name: "split".into(),
            members: (0..6).map(NodeId::from_index).collect(),
            start: SimTime::from_hours(4),
            heal: SimTime::from_hours(8),
        }],
        crashes: vec![
            CrashSpec {
                node: NodeId::from_index(3),
                at: SimTime::from_hours(6),
            },
            CrashSpec {
                node: NodeId::from_index(9),
                at: SimTime::from_hours(12),
            },
        ],
    }
}

#[test]
fn fig6_is_thread_count_invariant() {
    assert_thread_invariant("fig6", 16, 12, &[11, 23, 37], FaultSchedule::default);
}

#[test]
fn churn_with_retry_is_thread_count_invariant() {
    assert_thread_invariant("churn", 14, 15, &[5, 29], churn_schedule);
}

#[test]
fn chaos_is_thread_count_invariant() {
    assert_thread_invariant("chaos", 18, 18, &[101, 202], chaos_schedule);
}

#[test]
fn rvs_threads_env_default_matches_explicit_set() {
    // `set_threads` after construction must land in the same state the
    // RVS_THREADS-derived constructor default would have produced: the
    // pool is interchangeable mid-run, so re-setting to the same count is
    // a no-op and to a different count changes nothing but wall-clock.
    let a = run(12, 8, 7, FaultSchedule::default(), 1);
    let trace = TraceGenConfig::quick(12, SimDuration::from_hours(8)).generate(7);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, 7);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 7);
    system.enable_audit();
    // Flip the pool size mid-run: 4 workers for the first half, then back
    // to the inline path for the second. Still byte-identical.
    system.set_threads(4);
    system.run_until(
        SimTime::from_hours(4),
        SimDuration::from_hours(2),
        |_, _| {},
    );
    system.set_threads(1);
    system.run_until(
        SimTime::from_hours(8),
        SimDuration::from_hours(2),
        |_, _| {},
    );
    let b_body = fingerprint(&system);
    let a_body = a
        .split_once('\n')
        .map(|x| x.1)
        .expect("run() prefixes accuracy");
    assert_eq!(a_body, b_body, "mid-run set_threads changed results");
}
