//! Seeded determinism regression for the contribution cache: a full
//! fig6-style vote-sampling run with caching on must be indistinguishable
//! from the same run with caching off — identical accuracy curves,
//! moderator cast, and telemetry counters once the cache-bookkeeping
//! counters are projected away — while doing at least 5× fewer maxflow
//! evaluations (the headline win the cache exists for).

use robust_vote_sampling::scenario::{run_vote_sampling, VoteSamplingConfig};

#[test]
fn fig6_outcome_is_invariant_under_caching() {
    let mut on = VoteSamplingConfig::quick_demo(41);
    on.runs = 1;
    let mut off = on.clone();
    off.protocol = off.protocol.without_contribution_cache();

    let a = run_vote_sampling(&on);
    let b = run_vote_sampling(&off);

    // Observable behaviour is identical: same curves, same cast.
    assert_eq!(a.typical, b.typical);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.moderators, b.moderators);

    // Telemetry agrees modulo the cache counters themselves.
    assert_eq!(a.telemetry.modulo_cache(), b.telemetry.modulo_cache());

    // The uncached twin never touches the cache counters; the cached twin
    // answers exactly the same number of queries, split into hits + misses.
    let (c, u) = (&a.telemetry.barter, &b.telemetry.barter);
    assert_eq!(u.cache_hits, 0);
    assert_eq!(u.cache_misses, 0);
    assert_eq!(c.cache_hits + c.cache_misses, u.maxflow_evaluations);

    // Acceptance criterion: ≥5× fewer maxflow evaluations with the cache.
    assert!(
        u.maxflow_evaluations >= 5 * c.maxflow_evaluations,
        "expected >=5x reduction: uncached {} vs cached {}",
        u.maxflow_evaluations,
        c.maxflow_evaluations
    );
}

#[test]
fn cached_run_is_reproducible() {
    let mut cfg = VoteSamplingConfig::quick_demo(53);
    cfg.runs = 1;
    assert_eq!(run_vote_sampling(&cfg), run_vote_sampling(&cfg));
}
