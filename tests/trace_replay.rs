//! Integration: trace generation → piece-level BitTorrent replay →
//! BarterCast accounting, checked for physical consistency.

use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_bartercast::{BarterCast, BarterCastConfig};
use rvs_bittorrent::{BitTorrentNet, NetConfig};
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime};
use rvs_trace::{TraceEventKind, TraceGenConfig};

#[test]
fn completed_downloads_moved_at_least_the_file() {
    let trace = TraceGenConfig::quick(12, SimDuration::from_days(1)).generate(3);
    let net = BitTorrentNet::run_trace(
        &trace,
        NetConfig::default(),
        3,
        SimDuration::from_hours(24),
        |_, _| {},
    );
    for c in net.completions() {
        let spec = &trace.swarms[c.swarm.index()];
        let downloaded = net.ledger().total_downloaded_kib(c.peer);
        let file_kib = spec.file_size_mib as u64 * 1024;
        assert!(
            downloaded + 1024 >= file_kib,
            "peer {} completed swarm {} but only {downloaded} KiB arrived (file {file_kib})",
            c.peer,
            c.swarm
        );
    }
}

#[test]
fn upload_conservation_holds() {
    let trace = TraceGenConfig::quick(12, SimDuration::from_days(1)).generate(5);
    let net = BitTorrentNet::run_trace(
        &trace,
        NetConfig::default(),
        5,
        SimDuration::from_hours(24),
        |_, _| {},
    );
    let ledger = net.ledger();
    let total_up: u64 = (0..trace.peer_count())
        .map(|i| ledger.total_uploaded_kib(NodeId::from_index(i)))
        .sum();
    let total_down: u64 = (0..trace.peer_count())
        .map(|i| ledger.total_downloaded_kib(NodeId::from_index(i)))
        .sum();
    assert_eq!(total_up, total_down, "every upload is someone's download");
    assert_eq!(total_up, ledger.total_kib());
}

#[test]
fn free_riders_upload_less_than_altruists_on_average() {
    let trace = TraceGenConfig::quick(40, SimDuration::from_days(1)).generate(7);
    let net = BitTorrentNet::run_trace(
        &trace,
        NetConfig::default(),
        7,
        SimDuration::from_hours(24),
        |_, _| {},
    );
    let ledger = net.ledger();
    let mean = |free: bool| {
        let peers: Vec<u64> = trace
            .peers
            .iter()
            .filter(|p| p.free_rider == free)
            .map(|p| ledger.total_uploaded_kib(p.id))
            .collect();
        peers.iter().sum::<u64>() as f64 / peers.len().max(1) as f64
    };
    let fr = mean(true);
    let alt = mean(false);
    assert!(
        alt > fr,
        "altruists should out-upload free-riders: {alt} vs {fr}"
    );
}

#[test]
fn bartercast_contributions_never_exceed_hop_sum_of_ledger() {
    let trace = TraceGenConfig::quick(10, SimDuration::from_hours(18)).generate(9);
    let net = BitTorrentNet::run_trace(
        &trace,
        NetConfig::default(),
        9,
        SimDuration::from_hours(18),
        |_, _| {},
    );
    // Give every node full honest knowledge, then check that subjective
    // contributions are bounded by what the ground-truth ledger supports.
    let mut bc = BarterCast::new(trace.peer_count(), BarterCastConfig::default());
    for i in 0..trace.peer_count() {
        bc.sync_own_records(NodeId::from_index(i), net.ledger());
    }
    for i in 0..trace.peer_count() {
        for j in 0..trace.peer_count() {
            if i == j {
                continue;
            }
            let (ni, nj) = (NodeId::from_index(i), NodeId::from_index(j));
            let f = bc.contribution_kib(ni, nj);
            // Upper bound: everything j ever uploaded (any path from j is
            // capacity-limited by j's out-edges).
            let bound = net.ledger().total_uploaded_kib(nj);
            assert!(
                f <= bound,
                "f_{{{j}->{i}}} = {f} exceeds j's total uploads {bound}"
            );
        }
    }
}

#[test]
fn offline_peers_never_transfer() {
    let trace = TraceGenConfig::quick(10, SimDuration::from_hours(12)).generate(11);
    // Replay manually, asserting at every tick that transfers only grow
    // for online pairs (spot-checked via sampling the observer).
    let mut last_total = 0u64;
    let mut online_seen = false;
    BitTorrentNet::run_trace(
        &trace,
        NetConfig::default(),
        11,
        SimDuration::from_mins(30),
        |net, _| {
            let total = net.ledger().total_kib();
            assert!(total >= last_total, "ledger is cumulative");
            last_total = total;
            if !net.online_peers().is_empty() {
                online_seen = true;
            }
        },
    );
    assert!(online_seen, "trace should bring peers online");
}

#[test]
fn start_download_events_lead_to_membership() {
    let trace = TraceGenConfig::quick(14, SimDuration::from_hours(12)).generate(13);
    let mut net = BitTorrentNet::new(&trace, NetConfig::default(), &DetRng::new(13));
    let mut saw_download = false;
    for ev in &trace.events {
        net.apply_event(ev, ev.time);
        if let TraceEventKind::StartDownload { swarm } = ev.kind {
            saw_download = true;
            assert!(
                net.swarm(swarm).is_member(ev.peer),
                "StartDownload must register {} in {}",
                ev.peer,
                swarm
            );
        }
    }
    assert!(saw_download, "trace should contain downloads");
}

#[test]
fn full_system_replay_passes_runtime_audit() {
    // Replay a trace through the *whole* stack (not just the swarm layer)
    // with the invariant auditor on: physical conservation must survive the
    // protocols running on top, and the telemetry must account for every
    // gossip encounter the replay generated.
    let trace = TraceGenConfig::quick(14, SimDuration::from_hours(18)).generate(15);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, 15);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 15);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(18),
        SimDuration::from_hours(18),
        |_, _| {},
    );

    let auditor = system.auditor().expect("audit enabled");
    assert!(auditor.checks() > 0, "auditor performed no checks");
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations detected"
    );

    // Upload conservation inside the full system, as in the bare replay.
    let ledger = system.net().ledger();
    let n = system.trace_peer_count();
    let total_up: u64 = (0..n)
        .map(|i| ledger.total_uploaded_kib(NodeId::from_index(i)))
        .sum();
    let total_down: u64 = (0..n)
        .map(|i| ledger.total_downloaded_kib(NodeId::from_index(i)))
        .sum();
    assert_eq!(total_up, total_down, "every upload is someone's download");

    // Telemetry accounts for every encounter the replay generated.
    let snap = system.telemetry_snapshot();
    assert!(snap.encounters.attempted > 0);
    assert_eq!(
        snap.encounters.attempted,
        snap.encounters.delivered + snap.total_dropped()
    );
}
