//! Failure injection: the protocols must degrade gracefully, not break,
//! under lost encounters and gossip-PSS staleness.

use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

/// Assert the run's invariant auditor saw checks and no violations.
fn assert_clean_audit(system: &System) {
    let auditor = system.auditor().expect("audit enabled");
    assert!(auditor.checks() > 0, "auditor performed no checks");
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations detected"
    );
}

fn accuracy_with_loss(loss: f64, seed: u64) -> f64 {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(36)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        message_loss: loss,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, seed);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(36),
        SimDuration::from_hours(36),
        |_, _| {},
    );
    assert_clean_audit(&system);
    system.ordering_accuracy(&m)
}

#[test]
fn converges_despite_20_percent_message_loss() {
    let acc = accuracy_with_loss(0.2, 51);
    assert!(
        acc > 0.5,
        "gossip protocols must tolerate moderate loss, accuracy {acc}"
    );
}

#[test]
fn heavy_loss_slows_but_does_not_corrupt() {
    // At 70% loss the system is slower but must never rank incorrectly
    // *more* than it ranks correctly late in the run, and never crash.
    let acc = accuracy_with_loss(0.7, 53);
    assert!((0.0..=1.0).contains(&acc));
    // And the same run without loss should do at least as well.
    let clean = accuracy_with_loss(0.0, 53);
    assert!(
        clean >= acc - 0.15,
        "loss should not *help*: clean {clean} vs lossy {acc}"
    );
}

#[test]
fn total_loss_means_no_ballots_at_all() {
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(57);
    let (setup, _) = fig6_setup(&trace, 0.3, 0.3, 57);
    let protocol = ProtocolConfig {
        experience_t_mib: 0.0,
        message_loss: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 57);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(12),
        SimDuration::from_hours(12),
        |_, _| {},
    );
    for i in 0..system.trace_peer_count() {
        assert!(system
            .votes()
            .ballot(rvs_sim::NodeId::from_index(i))
            .is_empty());
    }
    assert_clean_audit(&system);
}

#[test]
fn loss_injection_is_deterministic() {
    assert_eq!(accuracy_with_loss(0.3, 59), accuracy_with_loss(0.3, 59));
}

#[test]
fn churn_with_stale_pss_conserves_every_encounter() {
    // Gossip PSS + 30% message loss: views go stale, partners churn
    // offline, sends get dropped. The telemetry must account for every
    // initiated encounter exactly once, and message loss must actually
    // trigger (the loss knob is real, not dead configuration).
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(30)).generate(61);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, 61);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        message_loss: 0.3,
        use_newscast_pss: true,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 61);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(30),
        SimDuration::from_hours(30),
        |_, _| {},
    );
    assert_clean_audit(&system);

    let snap = system.telemetry_snapshot();
    let e = &snap.encounters;
    assert!(e.attempted > 0, "no encounters were ever attempted");
    assert_eq!(
        e.attempted,
        e.delivered + snap.total_dropped(),
        "conservation: every attempt is delivered or dropped exactly once: {e:?}"
    );
    assert!(
        e.dropped_message_loss > 0,
        "30% loss over 30h must drop at least one encounter"
    );
    assert!(
        snap.pss.exchanges > 0,
        "the gossip PSS must have completed exchanges"
    );
}
