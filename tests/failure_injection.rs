//! Failure injection: the protocols must degrade gracefully, not break,
//! under lost encounters, gossip-PSS staleness, and network partitions.

use robust_vote_sampling::faults::{FaultSchedule, PartitionSpec};
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

/// Assert the run's invariant auditor saw checks and no violations.
fn assert_clean_audit(system: &System) {
    let auditor = system.auditor().expect("audit enabled");
    assert!(auditor.checks() > 0, "auditor performed no checks");
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations detected"
    );
}

fn accuracy_with_loss(loss: f64, seed: u64) -> f64 {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(36)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        message_loss: loss,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, seed);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(36),
        SimDuration::from_hours(36),
        |_, _| {},
    );
    assert_clean_audit(&system);
    system.ordering_accuracy(&m)
}

#[test]
fn converges_despite_20_percent_message_loss() {
    let acc = accuracy_with_loss(0.2, 51);
    assert!(
        acc > 0.5,
        "gossip protocols must tolerate moderate loss, accuracy {acc}"
    );
}

#[test]
fn heavy_loss_slows_but_does_not_corrupt() {
    // At 70% loss the system is slower but must never rank incorrectly
    // *more* than it ranks correctly late in the run, and never crash.
    let acc = accuracy_with_loss(0.7, 53);
    assert!((0.0..=1.0).contains(&acc));
    // And the same run without loss should do at least as well.
    let clean = accuracy_with_loss(0.0, 53);
    assert!(
        clean >= acc - 0.15,
        "loss should not *help*: clean {clean} vs lossy {acc}"
    );
}

#[test]
fn total_loss_means_no_ballots_at_all() {
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(57);
    let (setup, _) = fig6_setup(&trace, 0.3, 0.3, 57);
    let protocol = ProtocolConfig {
        experience_t_mib: 0.0,
        message_loss: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 57);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(12),
        SimDuration::from_hours(12),
        |_, _| {},
    );
    for i in 0..system.trace_peer_count() {
        assert!(system
            .votes()
            .ballot(rvs_sim::NodeId::from_index(i))
            .is_empty());
    }
    assert_clean_audit(&system);
}

#[test]
fn loss_injection_is_deterministic() {
    assert_eq!(accuracy_with_loss(0.3, 59), accuracy_with_loss(0.3, 59));
}

#[test]
fn split_brain_diverges_then_reconverges_after_heal() {
    // A 19-hour cut isolating a third of the population from the first
    // hour — before the moderations and votes have spread: rankings on
    // the cut side must fall behind the unpartitioned run while the cut
    // is up, then reconverge after heal — final accuracy within 0.05 of
    // the unpartitioned run, under a clean audit.
    let seed = 71;
    let hours = 36;
    let heal = SimTime::from_hours(20);
    let schedule = FaultSchedule {
        partitions: vec![PartitionSpec {
            name: "split-brain".into(),
            members: (0..8).map(NodeId::from_index).collect(),
            start: SimTime::from_hours(1),
            heal,
        }],
        ..FaultSchedule::default()
    };

    let run = |schedule: FaultSchedule| {
        let trace = TraceGenConfig::quick(24, SimDuration::from_hours(hours)).generate(seed);
        let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
        let protocol = ProtocolConfig {
            experience_t_mib: 1.0,
            ..ProtocolConfig::default()
        };
        let mut system = System::with_faults(trace, protocol, setup, seed, schedule);
        system.enable_audit();
        // Ordering accuracy at the last sample before the heal takes
        // effect. Both runs share a seed and trace, so samples land at
        // identical simulated instants — the mid-cut values compare the
        // two worlds at the same moment.
        let mut mid = 0.0;
        system.run_until(
            SimTime::from_hours(hours),
            SimDuration::from_hours(1),
            |sys, now| {
                if now <= heal {
                    mid = sys.ordering_accuracy(&m);
                }
            },
        );
        assert_clean_audit(&system);
        (mid, system.ordering_accuracy(&m), system)
    };

    let (clean_mid, clean_final, clean_sys) = run(FaultSchedule::default());
    let (part_mid, part_final, part_sys) = run(schedule);

    // The partition genuinely cut traffic (and only in the faulted run)...
    assert_eq!(clean_sys.fault_plane().counters().partitioned, 0);
    let cut = part_sys.fault_plane().counters().partitioned;
    assert!(cut > 0, "partition never dropped a cross-side encounter");
    assert!(
        !part_sys.fault_plane().partitioned(NodeId(0), NodeId(20)),
        "partition must be healed by the end of the run"
    );
    // ...and rankings diverged while it was up: the partitioned run's
    // mid-cut accuracy trails the unpartitioned run's at the same moment.
    assert!(
        part_mid < clean_mid,
        "split-brain should slow convergence: partitioned {part_mid} vs clean {clean_mid}"
    );
    // ...then healed: the gap closes to within 0.05 by the end of the run.
    assert!(
        (clean_final - part_final).abs() <= 0.05,
        "after heal the rankings must reconverge: clean {clean_final} vs partitioned {part_final}"
    );
}

#[test]
fn churn_with_stale_pss_conserves_every_encounter() {
    // Gossip PSS + 30% message loss: views go stale, partners churn
    // offline, sends get dropped. The telemetry must account for every
    // initiated encounter exactly once, and message loss must actually
    // trigger (the loss knob is real, not dead configuration).
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(30)).generate(61);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, 61);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        message_loss: 0.3,
        use_newscast_pss: true,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 61);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(30),
        SimDuration::from_hours(30),
        |_, _| {},
    );
    assert_clean_audit(&system);

    let snap = system.telemetry_snapshot();
    let e = &snap.encounters;
    assert!(e.attempted > 0, "no encounters were ever attempted");
    assert_eq!(
        e.attempted,
        e.delivered + snap.total_dropped(),
        "conservation: every attempt is delivered or dropped exactly once: {e:?}"
    );
    assert!(
        e.dropped_message_loss > 0,
        "30% loss over 30h must drop at least one encounter"
    );
    assert!(
        snap.pss.exchanges > 0,
        "the gossip PSS must have completed exchanges"
    );
}
