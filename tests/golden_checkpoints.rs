//! Forward-compatibility gate: the committed golden checkpoints under
//! `tests/golden/` were written by an earlier build of this repository,
//! and every future build must keep restoring them byte-for-byte.
//!
//! If an encoding change is intentional, bump `FORMAT_VERSION`, document
//! the new layout in DESIGN.md §12, and regenerate the corpus with
//! `cargo run --bin rvs -- ckpt regen` — the tests below spell out which
//! of those steps was skipped.

use robust_vote_sampling::scenario::checkpoint::{
    golden_checkpoint, golden_file_name, GOLDEN_HOURS, GOLDEN_SEEDS,
};
use robust_vote_sampling::scenario::{Checkpoint, System};
use rvs_checkpoint::FORMAT_VERSION;
use rvs_sim::{SimDuration, SimTime};
use std::path::PathBuf;

fn golden_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(golden_file_name(seed))
}

#[test]
fn golden_corpus_exists() {
    for seed in GOLDEN_SEEDS {
        assert!(
            golden_path(seed).is_file(),
            "missing golden checkpoint {}; run `cargo run --bin rvs -- ckpt regen` and commit it",
            golden_file_name(seed)
        );
    }
}

#[test]
fn golden_checkpoints_restore_and_describe_themselves() {
    for seed in GOLDEN_SEEDS {
        let ckpt = Checkpoint::load(&golden_path(seed))
            .unwrap_or_else(|e| panic!("golden seed {seed} failed to load: {e}"));
        let info = ckpt
            .info()
            .unwrap_or_else(|e| panic!("golden seed {seed} failed to describe itself: {e}"));
        assert_eq!(info.version, FORMAT_VERSION, "seed {seed}");
        assert_eq!(info.seed, seed);
        assert_eq!(info.now, SimTime::from_hours(GOLDEN_HOURS), "seed {seed}");
        let system = System::restore(&ckpt)
            .unwrap_or_else(|e| panic!("golden seed {seed} failed to restore: {e}"));
        assert_eq!(system.seed(), seed);
        assert_eq!(system.now(), SimTime::from_hours(GOLDEN_HOURS));
    }
}

#[test]
fn current_build_reproduces_golden_bytes_exactly() {
    // The strongest drift detector: re-running the fixed-seed golden
    // scenario with today's code must reproduce the committed bytes. Any
    // diff means the encoding or the simulation itself changed — either
    // way, resume compatibility with old checkpoints is broken and the
    // format version must be bumped.
    for seed in GOLDEN_SEEDS {
        let committed = std::fs::read(golden_path(seed))
            .unwrap_or_else(|e| panic!("golden seed {seed} unreadable: {e}"));
        let fresh = golden_checkpoint(seed).into_bytes();
        assert_eq!(
            fresh, committed,
            "golden seed {seed}: current build no longer reproduces the committed checkpoint; \
             if the format change is intentional, bump FORMAT_VERSION, update DESIGN.md §12, \
             and regenerate with `cargo run --bin rvs -- ckpt regen`"
        );
    }
}

#[test]
fn golden_checkpoints_resume_cleanly_under_audit() {
    for seed in GOLDEN_SEEDS {
        let ckpt = Checkpoint::load(&golden_path(seed)).expect("golden loads");
        let mut system = System::restore(&ckpt).expect("golden restores");
        system.enable_audit();
        system.run_until(
            SimTime::from_hours(GOLDEN_HOURS + 2),
            SimDuration::from_hours(1),
            |_, _| {},
        );
        assert_eq!(
            system.audit_violations(),
            &[] as &[String],
            "golden seed {seed}: invariant violations after resuming a committed checkpoint"
        );
        assert!(
            system.auditor().expect("audit enabled").checks() > 0,
            "golden seed {seed}: auditor never ran after resume"
        );
    }
}

#[test]
fn format_version_is_documented_in_design() {
    // DESIGN.md §12 must name the exact current version; CI runs this on
    // every change, so a FORMAT_VERSION bump cannot land without its
    // documentation.
    let design =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("DESIGN.md"))
            .expect("DESIGN.md readable");
    let marker = format!("`FORMAT_VERSION` = **{FORMAT_VERSION}**");
    assert!(
        design.contains(&marker),
        "DESIGN.md does not document the current checkpoint format: expected the literal \
         marker \"{marker}\" in §12; update the section alongside any format change"
    );
}
