//! Differential proof that the sharded scale-out engine is byte-identical
//! to the monolithic run at every shard count.
//!
//! Each scenario runs once at `K = 1` (which still routes every planned
//! send through the `ShardBus` — there is no separate monolithic code
//! path) and again at `K = 2, 4, 7`, through the full stack: trace
//! replay, windowed BitTorrent swarms, the sharded send phase with
//! cross-shard envelopes over the canonical codec, BarterCast,
//! ModerationCast, vote sampling, and — in the churn and byzantine
//! variants — the fault-injection plane and the guard plane. The runs
//! must agree on a fingerprint capturing every observable the system
//! exposes:
//!
//! * the full telemetry counter snapshot **modulo `ShardCounters`**
//!   (compact JSON bytes) — the bus block is transport bookkeeping and
//!   the only counters allowed to differ across `K`,
//! * every node's displayed moderator ranking and ballot voter count,
//! * the exact `f64::to_bits` pattern of every pairwise subjective
//!   contribution (no epsilon: reputation must match to the last bit),
//! * the ground-truth transfer ledger total and the in-flight count.
//!
//! A save-at-`K=4` / resume-at-`K=2` leg additionally proves shard count
//! is not simulation state: a checkpoint written under one partitioning
//! continues byte-identically under another, and under a different
//! thread count at the same time.

use robust_vote_sampling::attacks::{Flooder, Malformer};
use robust_vote_sampling::faults::{
    BurstLoss, CrashSpec, FaultConfig, FaultSchedule, PartitionSpec, RetryConfig,
};
use robust_vote_sampling::guard::GuardConfig;
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{Checkpoint, ProtocolConfig, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;
use std::fmt::Write as _;

const SHARD_COUNTS: [usize; 3] = [2, 4, 7];

/// Everything observable about a finished run, as comparable text. The
/// telemetry snapshot is projected through `modulo_shards` so the bus
/// transport counters (which legitimately vary with `K`) cannot mask a
/// real divergence elsewhere.
fn fingerprint(system: &System) -> String {
    let mut out = String::new();
    out.push_str(
        &system
            .telemetry_snapshot()
            .counters_only()
            .modulo_shards()
            .to_json_compact(),
    );
    out.push('\n');
    let n = system.trace_peer_count();
    for i in 0..n {
        let node = NodeId::from_index(i);
        let _ = writeln!(
            out,
            "{node} ranking={:?} voters={}",
            system.display_ranking(node),
            system.votes().ballot(node).unique_voters()
        );
    }
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let c = system.contribution_mib(NodeId::from_index(i), NodeId::from_index(j));
            if c != 0.0 {
                let _ = writeln!(out, "contrib {i}->{j} bits={:016x}", c.to_bits());
            }
        }
    }
    let _ = writeln!(
        out,
        "ledger_kib={} in_flight={}",
        system.net().ledger().total_kib(),
        system.in_flight()
    );
    out
}

/// Build the fig6 system under `schedule`, optionally armed with the
/// byzantine adversaries of the chaos suite.
fn build(peers: usize, hours: u64, seed: u64, schedule: FaultSchedule, attack: bool) -> System {
    let trace = TraceGenConfig::quick(peers, SimDuration::from_hours(hours)).generate(seed);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::with_faults(trace, protocol, setup, seed, schedule);
    if attack {
        system.set_guard_config(GuardConfig {
            inbox_cap: 8,
            ..GuardConfig::active()
        });
        let n = system.trace_peer_count();
        system.set_flooder(Flooder::new(
            (n.saturating_sub(4)..n).map(NodeId::from_index),
            10,
        ));
        system.set_malformer(Malformer::new(100));
    }
    system
}

/// Run a scenario to completion at `shards` shards, fully audited.
fn run(
    peers: usize,
    hours: u64,
    seed: u64,
    schedule: FaultSchedule,
    attack: bool,
    shards: usize,
) -> String {
    let mut system = build(peers, hours, seed, schedule, attack);
    system.set_shards(shards);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours((hours / 3).max(1)),
        |_, _| {},
    );
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations at {shards} shards (seed {seed})"
    );
    // The bus actually carried the round: sanity-check its own books
    // before trusting the modulo-shards comparison.
    let s = &system.telemetry_snapshot().shard;
    assert!(
        s.envelopes_local + s.envelopes_routed > 0,
        "no traffic crossed the bus at {shards} shards (seed {seed})"
    );
    if shards > 1 {
        assert!(
            s.envelopes_routed > 0,
            "{shards} shards but every envelope stayed shard-local (seed {seed})"
        );
    } else {
        assert_eq!(
            s.envelopes_routed, 0,
            "a 1-shard run cannot route cross-shard"
        );
    }
    assert_eq!(
        s.envelopes_rejected, 0,
        "bus admission refused honest traffic"
    );
    assert_eq!(
        system.shard_bus().in_flight(),
        0,
        "bus drained at the barrier"
    );
    fingerprint(&system)
}

/// Assert the monolithic twin and every sharded twin produce the same
/// bytes, across three seeds per scenario.
fn assert_shard_invariant(
    label: &str,
    peers: usize,
    hours: u64,
    seeds: &[u64],
    attack: bool,
    mk: fn() -> FaultSchedule,
) {
    for &seed in seeds {
        let mono = run(peers, hours, seed, mk(), attack, 1);
        for shards in SHARD_COUNTS {
            let sharded = run(peers, hours, seed, mk(), attack, shards);
            assert_eq!(
                mono, sharded,
                "{label}: seed {seed} diverged at {shards} shards"
            );
        }
    }
}

/// Mid-strength churn schedule: loss + retry/backoff, so the serial
/// resend path interleaves with the sharded send phase.
fn churn_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            loss: 0.15,
            retry: Some(RetryConfig::default()),
            ..FaultConfig::default()
        },
        partitions: vec![],
        crashes: vec![],
    }
}

/// The chaos-suite shape shrunk to differential size: latency + jitter,
/// burst loss, duplication, one partition, two crash-restarts, retry.
fn chaos_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            base_latency_ms: 5_000,
            jitter_spread: 1.0,
            loss: 0.0,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.3, 8.0)),
            retry: Some(RetryConfig::default()),
        },
        partitions: vec![PartitionSpec {
            name: "split".into(),
            members: (0..6).map(NodeId::from_index).collect(),
            start: SimTime::from_hours(4),
            heal: SimTime::from_hours(8),
        }],
        crashes: vec![
            CrashSpec {
                node: NodeId::from_index(3),
                at: SimTime::from_hours(6),
            },
            CrashSpec {
                node: NodeId::from_index(9),
                at: SimTime::from_hours(12),
            },
        ],
    }
}

#[test]
fn fig6_is_shard_count_invariant() {
    assert_shard_invariant("fig6", 16, 12, &[11, 23, 37], false, FaultSchedule::default);
}

#[test]
fn churn_with_retry_is_shard_count_invariant() {
    assert_shard_invariant("churn", 14, 15, &[5, 29, 41], false, churn_schedule);
}

#[test]
fn byzantine_chaos_is_shard_count_invariant() {
    assert_shard_invariant("byzantine", 18, 18, &[101, 202, 303], true, chaos_schedule);
}

#[test]
fn shards_compose_with_threads() {
    // --shards and --threads are independent axes: 4 shards × 4 workers
    // must match the 1-shard 1-thread baseline byte for byte.
    let seed = 23;
    let mono = run(16, 12, seed, churn_schedule(), false, 1);
    let mut system = build(16, 12, seed, churn_schedule(), false);
    system.set_shards(4);
    system.set_threads(4);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(12),
        SimDuration::from_hours(4),
        |_, _| {},
    );
    assert_eq!(system.audit_violations(), &[] as &[String]);
    assert_eq!(
        mono,
        fingerprint(&system),
        "4 shards × 4 threads diverged from the monolithic serial run"
    );
}

#[test]
fn save_at_k4_resume_at_k2_is_byte_identical() {
    // Shard count is scheduling state, not simulation state: a run saved
    // under one partitioning must continue identically under any other.
    // Reference: an uninterrupted 1-shard run.
    let seed = 37;
    let hours = 12;
    let reference = run(16, hours, seed, churn_schedule(), false, 1);

    let mut writer = build(16, hours, seed, churn_schedule(), false);
    writer.set_shards(4);
    writer.enable_audit();
    writer.run_until(
        SimTime::from_hours(6),
        SimDuration::from_hours(3),
        |_, _| {},
    );
    let bytes = writer.checkpoint().into_bytes();

    let ckpt = Checkpoint::from_bytes(bytes).expect("self-produced checkpoint parses");
    let mut resumed = System::restore(&ckpt).expect("self-produced checkpoint restores");
    // Restore adopts the writer's K before the caller overrides it.
    assert_eq!(
        resumed.shards(),
        4,
        "restore must adopt the writer's shard count"
    );
    resumed.set_shards(2);
    resumed.enable_audit();
    resumed.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours(3),
        |_, _| {},
    );
    assert_eq!(resumed.audit_violations(), &[] as &[String]);
    assert_eq!(
        reference,
        fingerprint(&resumed),
        "save at K=4 / resume at K=2 diverged from the uninterrupted run"
    );
}

#[test]
fn mid_run_reshard_changes_nothing() {
    // set_shards is legal between any two rounds; flipping 1 -> 7 -> 2
    // mid-run must still land on the monolithic bytes.
    let seed = 11;
    let reference = run(16, 12, seed, FaultSchedule::default(), false, 1);
    let mut system = build(16, 12, seed, FaultSchedule::default(), false);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(4),
        SimDuration::from_hours(2),
        |_, _| {},
    );
    system.set_shards(7);
    system.run_until(
        SimTime::from_hours(8),
        SimDuration::from_hours(2),
        |_, _| {},
    );
    system.set_shards(2);
    system.run_until(
        SimTime::from_hours(12),
        SimDuration::from_hours(2),
        |_, _| {},
    );
    assert_eq!(system.audit_violations(), &[] as &[String]);
    assert_eq!(
        reference,
        fingerprint(&system),
        "mid-run resharding changed results"
    );
}

#[test]
fn per_shard_accuracy_observers_sum_to_global() {
    // The per-shard observer partitions the population: summing the
    // (correct, total) counts over all shards reproduces the global
    // ordering-accuracy fraction exactly.
    let seed = 23;
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, seed);
    system.set_shards(4);
    system.run_until(
        SimTime::from_hours(12),
        SimDuration::from_hours(12),
        |_, _| {},
    );
    let (mut correct, mut total) = (0u64, 0u64);
    for shard in 0..system.shards() {
        let (c, t) = system.ordering_accuracy_in_shard(shard, &m);
        assert_eq!(
            t as usize,
            system.shard_members(shard).len(),
            "observer must count every member of shard {shard}"
        );
        correct += c;
        total += t;
    }
    assert_eq!(total as usize, system.trace_peer_count());
    let global = system.ordering_accuracy(&m);
    let summed = correct as f64 / total as f64;
    assert_eq!(
        global.to_bits(),
        summed.to_bits(),
        "per-shard observer counts disagree with the global fraction"
    );
}
