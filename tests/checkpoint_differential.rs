//! Differential proof that checkpoint/restore is invisible: running to
//! round R, checkpointing, restoring, and continuing is **byte-identical**
//! to never having stopped.
//!
//! Every scenario × seed × resume-point cell compares the same fingerprint
//! the thread-invariance suite uses — the full telemetry counter snapshot
//! as compact JSON, every node's displayed ranking and ballot voter count,
//! the exact `f64::to_bits` pattern of every pairwise contribution, the
//! ledger total and the in-flight count — so any state the checkpoint
//! forgets (an RNG lane, a backoff timer, a dedup window, a BitTorrent
//! window cursor) shows up as a byte diff downstream of the resume point.
//!
//! The resume path deliberately round-trips through bytes
//! (`Checkpoint::from_bytes(checkpoint().into_bytes())`), so the encoding
//! itself — not just the in-memory clone — is what is proven equivalent.
//! The suite runs under both CI thread legs (`RVS_THREADS` 1 and 4), and
//! dedicated cases restore on a *different* thread count than the run that
//! wrote the checkpoint.

use robust_vote_sampling::attacks::{Flooder, Malformer};
use robust_vote_sampling::faults::{
    BurstLoss, CrashSpec, FaultConfig, FaultSchedule, PartitionSpec, RetryConfig,
};
use robust_vote_sampling::guard::GuardConfig;
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{Checkpoint, ProtocolConfig, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;
use std::fmt::Write as _;

/// Everything observable about a finished run, as comparable text.
fn fingerprint(system: &System) -> String {
    let mut out = String::new();
    out.push_str(
        &system
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
    );
    out.push('\n');
    let n = system.trace_peer_count();
    for i in 0..n {
        let node = NodeId::from_index(i);
        let _ = writeln!(
            out,
            "{node} ranking={:?} voters={}",
            system.display_ranking(node),
            system.votes().ballot(node).unique_voters()
        );
    }
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let c = system.contribution_mib(NodeId::from_index(i), NodeId::from_index(j));
            if c != 0.0 {
                let _ = writeln!(out, "contrib {i}->{j} bits={:016x}", c.to_bits());
            }
        }
    }
    let _ = writeln!(
        out,
        "ledger_kib={} in_flight={}",
        system.net().ledger().total_kib(),
        system.in_flight()
    );
    out
}

fn build(peers: usize, hours: u64, seed: u64, schedule: FaultSchedule) -> (System, [NodeId; 3]) {
    let trace = TraceGenConfig::quick(peers, SimDuration::from_hours(hours)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::with_faults(trace, protocol, setup, seed, schedule);
    system.enable_audit();
    (system, m)
}

fn advance(system: &mut System, to: SimTime) {
    system.run_until(to, SimDuration::from_hours(1), |_, _| {});
}

fn finish(system: System, m: &[NodeId; 3], label: &str, seed: u64) -> String {
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "{label}: invariant violations (seed {seed})"
    );
    let acc = system.ordering_accuracy(m);
    format!("accuracy={}\n{}", acc.to_bits(), fingerprint(&system))
}

/// The uninterrupted reference run.
fn straight(peers: usize, hours: u64, seed: u64, schedule: FaultSchedule) -> String {
    let (mut system, m) = build(peers, hours, seed, schedule);
    advance(&mut system, SimTime::from_hours(hours));
    finish(system, &m, "straight", seed)
}

/// Checkpoint the system through the full byte encoding and bring it back.
fn roundtrip(system: &System) -> System {
    let bytes = system.checkpoint().into_bytes();
    let ckpt = Checkpoint::from_bytes(bytes).expect("self-produced checkpoint parses");
    let restored = System::restore(&ckpt).expect("self-produced checkpoint restores");
    assert_eq!(restored.now(), system.now());
    assert_eq!(restored.seed(), system.seed());
    restored
}

/// Run to each resume point, checkpoint, restore (through bytes), continue
/// to the end, and demand the straight run's exact fingerprint.
fn assert_resume_equivalence(
    label: &str,
    peers: usize,
    hours: u64,
    seeds: &[u64],
    mk: fn() -> FaultSchedule,
) {
    for &seed in seeds {
        let reference = straight(peers, hours, seed, mk());
        for resume_at in [hours / 3, 2 * hours / 3] {
            let (mut system, m) = build(peers, hours, seed, mk());
            advance(&mut system, SimTime::from_hours(resume_at));
            let mut resumed = roundtrip(&system);
            drop(system);
            resumed.enable_audit();
            advance(&mut resumed, SimTime::from_hours(hours));
            let got = finish(resumed, &m, label, seed);
            assert_eq!(
                reference, got,
                "{label}: seed {seed} resumed at {resume_at}h diverged from straight run"
            );
        }
    }
}

/// A mid-strength schedule exercising loss + retry/backoff (backoff
/// timers and the resend queue must survive the checkpoint).
fn churn_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            loss: 0.15,
            retry: Some(RetryConfig::default()),
            ..FaultConfig::default()
        },
        partitions: vec![],
        crashes: vec![],
    }
}

/// The chaos-suite shape: latency + jitter (in-flight deliveries cross the
/// checkpoint), burst loss, duplication, one partition, two
/// crash-restarts, retry/backoff.
fn chaos_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            base_latency_ms: 5_000,
            jitter_spread: 1.0,
            loss: 0.0,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.3, 8.0)),
            retry: Some(RetryConfig::default()),
        },
        partitions: vec![PartitionSpec {
            name: "split".into(),
            members: (0..6).map(NodeId::from_index).collect(),
            start: SimTime::from_hours(4),
            heal: SimTime::from_hours(8),
        }],
        crashes: vec![
            CrashSpec {
                node: NodeId::from_index(3),
                at: SimTime::from_hours(6),
            },
            CrashSpec {
                node: NodeId::from_index(9),
                at: SimTime::from_hours(12),
            },
        ],
    }
}

#[test]
fn fig6_resume_is_byte_identical() {
    assert_resume_equivalence("fig6", 16, 12, &[11, 23, 37], FaultSchedule::default);
}

#[test]
fn churn_with_retry_resume_is_byte_identical() {
    assert_resume_equivalence("churn", 14, 15, &[5, 29, 41], churn_schedule);
}

#[test]
fn chaos_resume_is_byte_identical() {
    assert_resume_equivalence("chaos", 18, 18, &[101, 202, 303], chaos_schedule);
}

#[test]
fn double_resume_is_byte_identical() {
    // Stop twice: run → ckpt → resume → ckpt → resume → end. The second
    // checkpoint is taken by a *restored* system, so any volatile the
    // first restore rebuilt wrongly would poison the second blob.
    let (peers, hours, seed) = (16usize, 12u64, 11u64);
    let reference = straight(peers, hours, seed, FaultSchedule::default());
    let (mut system, m) = build(peers, hours, seed, FaultSchedule::default());
    advance(&mut system, SimTime::from_hours(4));
    let mut once = roundtrip(&system);
    once.enable_audit();
    advance(&mut once, SimTime::from_hours(8));
    let mut twice = roundtrip(&once);
    twice.enable_audit();
    advance(&mut twice, SimTime::from_hours(hours));
    let got = finish(twice, &m, "double-resume", seed);
    assert_eq!(reference, got, "double resume diverged from straight run");
}

#[test]
fn restore_on_different_thread_count_is_byte_identical() {
    // A checkpoint written by a 1-thread run must continue identically on
    // 4 threads, and vice versa: the pool is rebuilt from the environment
    // on restore precisely because thread count is not simulation state.
    let (peers, hours, seed) = (14usize, 15u64, 5u64);
    let reference = straight(peers, hours, seed, churn_schedule());
    for (before, after) in [(1usize, 4usize), (4, 1)] {
        let (mut system, m) = build(peers, hours, seed, churn_schedule());
        system.set_threads(before);
        advance(&mut system, SimTime::from_hours(hours / 2));
        let mut resumed = roundtrip(&system);
        resumed.set_threads(after);
        resumed.enable_audit();
        advance(&mut resumed, SimTime::from_hours(hours));
        let got = finish(resumed, &m, "cross-thread", seed);
        assert_eq!(
            reference, got,
            "checkpoint written at {before} threads diverged when resumed at {after}"
        );
    }
}

#[test]
fn checkpoint_is_deterministic_and_side_effect_free() {
    // Snapshotting twice yields identical bytes, and taking a checkpoint
    // must not perturb the run that continues past it.
    let (peers, hours, seed) = (16usize, 12u64, 23u64);
    let reference = straight(peers, hours, seed, FaultSchedule::default());
    let (mut system, m) = build(peers, hours, seed, FaultSchedule::default());
    advance(&mut system, SimTime::from_hours(6));
    let a = system.checkpoint();
    let b = system.checkpoint();
    assert_eq!(
        a.as_bytes(),
        b.as_bytes(),
        "two snapshots of the same state differ"
    );
    advance(&mut system, SimTime::from_hours(hours));
    let got = finish(system, &m, "ckpt-side-effect", seed);
    assert_eq!(reference, got, "taking a checkpoint changed the run");
}

#[test]
fn file_save_load_roundtrip_resumes_identically() {
    let (peers, hours, seed) = (16usize, 12u64, 37u64);
    let reference = straight(peers, hours, seed, FaultSchedule::default());
    let (mut system, m) = build(peers, hours, seed, FaultSchedule::default());
    advance(&mut system, SimTime::from_hours(4));
    // rvs-lint: allow(ambient-env) -- temp_dir placement cannot affect simulation behaviour; the checkpoint bytes are what is compared
    let dir = std::env::temp_dir();
    let path = dir.join(format!("rvs-ckpt-diff-{}-{seed}.ckpt", std::process::id()));
    system.checkpoint().save(&path).expect("save checkpoint");
    let loaded = Checkpoint::load(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();
    let mut resumed = System::restore(&loaded).expect("restore from file");
    resumed.enable_audit();
    advance(&mut resumed, SimTime::from_hours(hours));
    let got = finish(resumed, &m, "file-roundtrip", seed);
    assert_eq!(reference, got, "file save/load resume diverged");
}

#[test]
fn chaos_checkpoint_mid_partition_audits_clean_after_resume() {
    // The chaos interaction case: node 3 has crash-restarted (6h), the
    // partition is still cut (4h–8h), deliveries are in flight. A
    // checkpoint taken here must carry the partition state, the crashed
    // node's wiped windows, and the in-flight term of the conservation
    // identity — the re-enabled auditor re-checks that identity after
    // every resumed round and must stay clean to the end.
    let (peers, hours, seed) = (18usize, 18u64, 101u64);
    let (mut system, m) = build(peers, hours, seed, chaos_schedule());
    advance(&mut system, SimTime::from_hours(6));
    let mid = system.checkpoint();
    let info = mid.info().expect("checkpoint summarizes");
    assert_eq!(info.seed, seed);
    assert!(info.now >= SimTime::from_hours(6));
    let mut resumed = System::restore(&mid).expect("mid-partition checkpoint restores");
    resumed.enable_audit();
    advance(&mut resumed, SimTime::from_hours(hours));
    assert!(
        resumed.auditor().expect("audit enabled").checks() > 0,
        "auditor never ran after resume"
    );
    let reference = straight(peers, hours, seed, chaos_schedule());
    let got = finish(resumed, &m, "chaos-mid-partition", seed);
    assert_eq!(reference, got, "mid-partition resume diverged");
}

/// The byzantine shape: guard armed (small inbox), 4 flooders, 10% wire
/// mutation, on top of the chaos schedule. Quarantine clocks, strike
/// counters, token buckets, the malformer RNG lane, and inbox gauges all
/// have to survive the checkpoint.
fn build_byzantine(peers: usize, hours: u64, seed: u64) -> (System, [NodeId; 3]) {
    let (mut system, m) = build(peers, hours, seed, chaos_schedule());
    system.set_guard_config(GuardConfig {
        inbox_cap: 8,
        ..GuardConfig::active()
    });
    system.set_flooder(Flooder::new((peers - 4..peers).map(NodeId::from_index), 12));
    system.set_malformer(Malformer::new(100));
    (system, m)
}

#[test]
fn byzantine_resume_mid_quarantine_is_byte_identical() {
    // Stop the world while peers sit in active quarantine and strikes /
    // buckets are partially spent, restore through bytes, and demand the
    // straight attacked run's exact fingerprint. Any guard state the
    // checkpoint forgets (a quarantine release clock, a strike count, a
    // token level, the wire-mutation RNG lane) diverges downstream.
    let (peers, hours, seed) = (18usize, 18u64, 202u64);
    let reference = {
        let (mut system, m) = build_byzantine(peers, hours, seed);
        advance(&mut system, SimTime::from_hours(hours));
        finish(system, &m, "byzantine-straight", seed)
    };

    let (mut system, m) = build_byzantine(peers, hours, seed);
    let mut at = hours / 6;
    advance(&mut system, SimTime::from_hours(at));
    while system.guard().quarantined_count(system.now()) == 0 && at < hours - 2 {
        at += 1;
        advance(&mut system, SimTime::from_hours(at));
    }
    assert!(
        system.guard().quarantined_count(system.now()) > 0,
        "resume point never fell inside an active quarantine"
    );
    assert!(
        system.telemetry_snapshot().guard.quarantines_started > 0,
        "no quarantine ever started before the checkpoint"
    );

    let resumed_at = system.now();
    let mut resumed = roundtrip(&system);
    assert_eq!(
        resumed.guard().quarantined_count(resumed_at),
        system.guard().quarantined_count(resumed_at),
        "restore changed the set of quarantined peers"
    );
    assert_eq!(
        resumed
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        system
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        "restore changed the guard counters"
    );
    drop(system);
    resumed.enable_audit();
    advance(&mut resumed, SimTime::from_hours(hours));
    let got = finish(resumed, &m, "byzantine-mid-quarantine", seed);
    assert_eq!(reference, got, "mid-quarantine resume diverged");
}
