//! Tier-1 gate: the workspace must be `rvs-lint`-clean.
//!
//! Runs the same engine as `cargo run -p rvs-lint -- --workspace-root .
//! --deny-findings`, so a determinism, panic-surface, structural
//! (persist-coverage / rng-fork-site / rng-branch / float-total-order),
//! telemetry-coverage or config-drift regression fails `cargo test`
//! directly — no separate CI wiring required for local development.

use std::path::Path;

/// Every finding in the workspace must carry a written justification.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = rvs_lint::run(root);
    let unjustified: Vec<String> = report
        .unjustified()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        unjustified.is_empty(),
        "rvs-lint found {} unjustified finding(s):\n{}\n\
         Fix the construct or add `// rvs-lint: allow(<rule>) -- <why>`.",
        unjustified.len(),
        unjustified.join("\n")
    );
}

/// The gate actually has teeth: a seeded violation in a protocol crate
/// path is detected by the very engine the test above relies on.
#[test]
fn gate_detects_seeded_violation() {
    let bad = "use std::collections::HashMap;\n\
               pub fn f() -> usize { let m: HashMap<u32, u32> = HashMap::new(); m.len() }\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", bad);
    assert!(
        findings.iter().any(|f| f.rule == "hash-container"),
        "seeded HashMap must fire hash-container, got: {findings:?}"
    );
}

/// Structural teeth: a `Persist` impl that forgets a declared field is
/// caught by the same engine the clean-workspace test runs.
#[test]
fn gate_detects_persist_field_drift() {
    let bad = "pub struct S { pub a: u64, pub b: u64 }\n\
               impl rvs_checkpoint::Persist for S {\n\
                   fn persist(&self, enc: &mut Encoder) { enc.u64(self.a); }\n\
                   fn restore(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {\n\
                       Ok(S { a: dec.u64()?, b: 0 })\n\
                   }\n\
               }\n";
    let findings = rvs_lint::check_source("crates/checkpoint/src/seeded.rs", bad);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "persist-coverage" && f.message.contains("`b`")),
        "forgotten field must fire persist-coverage, got: {findings:?}"
    );
}

/// Structural teeth: an RNG stream rooted outside the sanctioned topology
/// sites is detected, and the sanctioned sites themselves stay exempt.
#[test]
fn gate_detects_unsanctioned_rng_fork() {
    let bad = "pub fn rogue(seed: u64) -> DetRng { DetRng::new(seed) }\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", bad);
    assert!(
        findings.iter().any(|f| f.rule == "rng-fork-site"),
        "unsanctioned DetRng::new must fire rng-fork-site, got: {findings:?}"
    );
    let sanctioned = rvs_lint::check_source("crates/sim/src/seeded.rs", bad);
    assert!(
        sanctioned.is_empty(),
        "crates/sim/ is the sanctioned home, got: {sanctioned:?}"
    );
}

/// Structural teeth: a draw short-circuited behind `&&` and a float
/// equality both fire in protocol paths.
#[test]
fn gate_detects_conditional_draw_and_float_equality() {
    let bad = "pub fn f(on: bool, x: f64, rng: &mut DetRng) -> bool {\n\
                   if on && rng.chance(0.5) { return true; }\n\
                   x == 0.0\n\
               }\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", bad);
    assert!(
        findings.iter().any(|f| f.rule == "rng-branch"),
        "short-circuited draw must fire rng-branch, got: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.rule == "float-total-order"),
        "float equality must fire float-total-order, got: {findings:?}"
    );
}

/// Suppression hygiene has teeth too: a grant that suppresses nothing is
/// itself an unjustified finding, so stale excuses cannot accumulate.
#[test]
fn gate_detects_unused_suppressions() {
    let bad = "// rvs-lint: allow(wall-clock) -- excuse with nothing to excuse\n\
               pub fn fine() {}\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", bad);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "unused-suppression" && f.justification.is_none()),
        "dead grant must fire unused-suppression, got: {findings:?}"
    );
}

/// The lint's own metadata is checked against this workspace: every
/// exempt path, sanctioned fork site, and protocol crate it names exists.
#[test]
fn lint_metadata_is_not_stale() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = rvs_lint::xcheck::stale_metadata(root);
    assert!(findings.is_empty(), "stale lint metadata: {findings:?}");
}

/// And annotations are honoured end to end: the same violation with a
/// justified allow is reported as justified, not clean silence.
#[test]
fn gate_honours_annotations() {
    let ok = "use std::collections::BTreeMap;\n\
              // rvs-lint: allow(hash-container) -- fixture exercising the annotation path\n\
              pub fn f() { let m = std::collections::HashMap::<u32, u32>::new(); m.len(); }\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", ok);
    assert!(
        !findings.is_empty() && findings.iter().all(|f| f.justification.is_some()),
        "expected the violation to be reported as justified, got: {findings:?}"
    );
}
