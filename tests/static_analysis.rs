//! Tier-1 gate: the workspace must be `rvs-lint`-clean.
//!
//! Runs the same engine as `cargo run -p rvs-lint -- --workspace-root .
//! --deny-findings`, so a determinism, panic-surface, telemetry-coverage
//! or config-drift regression fails `cargo test` directly — no separate
//! CI wiring required for local development.

use std::path::Path;

/// Every finding in the workspace must carry a written justification.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = rvs_lint::run(root);
    let unjustified: Vec<String> = report
        .unjustified()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        unjustified.is_empty(),
        "rvs-lint found {} unjustified finding(s):\n{}\n\
         Fix the construct or add `// rvs-lint: allow(<rule>) -- <why>`.",
        unjustified.len(),
        unjustified.join("\n")
    );
}

/// The gate actually has teeth: a seeded violation in a protocol crate
/// path is detected by the very engine the test above relies on.
#[test]
fn gate_detects_seeded_violation() {
    let bad = "use std::collections::HashMap;\n\
               pub fn f() -> usize { let m: HashMap<u32, u32> = HashMap::new(); m.len() }\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", bad);
    assert!(
        findings.iter().any(|f| f.rule == "hash-container"),
        "seeded HashMap must fire hash-container, got: {findings:?}"
    );
}

/// And annotations are honoured end to end: the same violation with a
/// justified allow is reported as justified, not clean silence.
#[test]
fn gate_honours_annotations() {
    let ok = "use std::collections::BTreeMap;\n\
              // rvs-lint: allow(hash-container) -- fixture exercising the annotation path\n\
              pub fn f() { let m = std::collections::HashMap::<u32, u32>::new(); m.len(); }\n";
    let findings = rvs_lint::check_source("crates/core/src/seeded.rs", ok);
    assert!(
        !findings.is_empty() && findings.iter().all(|f| f.justification.is_some()),
        "expected the violation to be reported as justified, got: {findings:?}"
    );
}
