//! Property-based tests of protocol invariants (proptest).

use proptest::prelude::*;
use robust_vote_sampling::core::{
    rank_ballot, rank_ballot_positive, select_votes, BallotBox, TopKList, Vote, VoteEntry,
    VoteListPolicy, VoxCache,
};
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_bittorrent::Bitfield;
use rvs_sim::{DetRng, NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

fn arb_vote() -> impl Strategy<Value = Vote> {
    prop_oneof![Just(Vote::Positive), Just(Vote::Negative)]
}

fn arb_vote_list(max_mods: u32) -> impl Strategy<Value = Vec<VoteEntry>> {
    prop::collection::btree_map(0..max_mods, (arb_vote(), 0u64..1_000), 0..20).prop_map(|m| {
        m.into_iter()
            .map(|(moderator, (vote, t))| VoteEntry {
                moderator: NodeId(moderator),
                vote,
                made_at: SimTime::from_secs(t),
            })
            .collect()
    })
}

proptest! {
    /// The ballot box never exceeds B_max unique voters, never holds two
    /// votes for the same (voter, moderator), and tallies stay consistent
    /// with the entry count.
    #[test]
    fn ballot_invariants(
        b_max in 1usize..12,
        merges in prop::collection::vec((0u32..20, arb_vote_list(8)), 0..60),
    ) {
        let mut bb = BallotBox::new(b_max);
        for (step, (voter, list)) in merges.into_iter().enumerate() {
            bb.merge(NodeId(voter), &list, SimTime::from_secs(step as u64));
            prop_assert!(bb.unique_voters() <= b_max);
            // One vote per (voter, moderator): entries must be unique.
            let mut keys: Vec<(NodeId, NodeId)> =
                bb.iter().map(|(v, m, _, _)| (v, m)).collect();
            let before = keys.len();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(keys.len(), before);
            // Tallies add up to the stored entry count.
            let total: usize = bb
                .moderators()
                .into_iter()
                .map(|m| {
                    let (p, n) = bb.tally(m);
                    p + n
                })
                .sum();
            prop_assert_eq!(total, bb.len());
            // Dispersion is a valid fraction.
            let d = bb.dispersion();
            prop_assert!((0.0..=0.5).contains(&d));
        }
    }

    /// Re-merging a voter fully replaces its old contribution.
    #[test]
    fn ballot_remerge_replaces(
        first in arb_vote_list(8),
        second in arb_vote_list(8),
    ) {
        let mut bb = BallotBox::new(10);
        bb.merge(NodeId(1), &first, SimTime::from_secs(1));
        bb.merge(NodeId(1), &second, SimTime::from_secs(2));
        if second.is_empty() {
            // An empty list is a no-op merge: the old contribution stays.
            prop_assert_eq!(bb.len(), first.len());
        } else {
            // The ballot now reflects exactly the second list.
            prop_assert_eq!(bb.len(), second.len());
            let mods: std::collections::BTreeSet<NodeId> =
                bb.iter().map(|(_, m, _, _)| m).collect();
            let expect: std::collections::BTreeSet<NodeId> =
                second.iter().map(|e| e.moderator).collect();
            prop_assert_eq!(mods, expect);
        }
    }

    /// Vote selection respects the budget, returns distinct moderators,
    /// and the hybrid policy always includes the newest half.
    #[test]
    fn select_votes_budget(
        entries in arb_vote_list(50),
        max in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let mut rng = DetRng::new(seed);
        let total = entries.len();
        let out = select_votes(entries.clone(), max, VoteListPolicy::RecencyAndRandom, &mut rng);
        prop_assert_eq!(out.len(), total.min(max));
        let mut mods: Vec<NodeId> = out.iter().map(|e| e.moderator).collect();
        let before = mods.len();
        mods.sort_unstable();
        mods.dedup();
        prop_assert_eq!(mods.len(), before, "no duplicate moderators");
        // Every selected entry came from the input.
        for e in &out {
            prop_assert!(entries.contains(e));
        }
    }

    /// VoxPopuli rank-average merge: output length ≤ K, entries distinct,
    /// and a moderator leading every cached list leads the merge.
    #[test]
    fn vox_merge_properties(
        lists in prop::collection::vec(
            prop::collection::vec(0u32..10, 1..4), 1..8),
        leader in 50u32..55,
    ) {
        let mut cache = VoxCache::new(10, 3);
        for l in &lists {
            let mut ranked = vec![NodeId(leader)];
            ranked.extend(l.iter().map(|&m| NodeId(m)).filter(|&m| m != NodeId(leader)));
            cache.push(TopKList { ranked });
        }
        let merged = cache.merged();
        prop_assert!(merged.len() <= 3);
        let mut seen = merged.ranked.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), merged.len());
        prop_assert_eq!(merged.top(), Some(NodeId(leader)));
    }

    /// Ranking: positive-only output is a prefix-filtered subset of the
    /// full ranking, and both are deterministic.
    #[test]
    fn ranking_consistency(
        votes in prop::collection::vec((0u32..6, 0u32..6, arb_vote()), 0..40),
    ) {
        let mut bb = BallotBox::new(100);
        let mut per_voter: std::collections::BTreeMap<u32, Vec<VoteEntry>> = Default::default();
        for (voter, moderator, vote) in votes {
            per_voter.entry(voter).or_default().push(VoteEntry {
                moderator: NodeId(moderator),
                vote,
                made_at: SimTime::ZERO,
            });
        }
        for (v, mut list) in per_voter {
            // One vote per moderator within a list.
            list.sort_by_key(|e| e.moderator);
            list.dedup_by_key(|e| e.moderator);
            bb.merge(NodeId(v), &list, SimTime::from_secs(v as u64));
        }
        let full = rank_ballot(&bb, 10);
        let positive = rank_ballot_positive(&bb, 10);
        prop_assert_eq!(rank_ballot(&bb, 10), full.clone(), "deterministic");
        for m in &positive.ranked {
            let (p, n) = bb.tally(*m);
            prop_assert!(p as i64 - n as i64 > 0);
            prop_assert!(full.ranked.contains(m));
        }
        // Scores are non-increasing down the full ranking.
        let score = |m: NodeId| {
            let (p, n) = bb.tally(m);
            p as i64 - n as i64
        };
        for w in full.ranked.windows(2) {
            prop_assert!(score(w[0]) >= score(w[1]));
        }
    }

    /// Bitfield set/count/progress invariants under random piece sets.
    #[test]
    fn bitfield_invariants(
        len in 1u32..300,
        pieces in prop::collection::vec(0u32..300, 0..100),
    ) {
        let mut bf = Bitfield::empty(len);
        let mut reference = std::collections::BTreeSet::new();
        for p in pieces {
            let p = p % len;
            let newly = bf.set(p);
            prop_assert_eq!(newly, reference.insert(p));
        }
        prop_assert_eq!(bf.count() as usize, reference.len());
        prop_assert_eq!(bf.ones().count(), reference.len());
        prop_assert_eq!(bf.is_complete(), reference.len() == len as usize);
        let full = Bitfield::full(len);
        let missing: Vec<u32> = bf.missing_from(&full).collect();
        prop_assert_eq!(missing.len() + reference.len(), len as usize);
        for m in missing {
            prop_assert!(!reference.contains(&m));
        }
    }
}

// Whole-system property: for arbitrary small seeds, loss rates, and either
// PSS, a full audited run observes zero invariant violations (conservation,
// ballot bound, experience gating, VoxPopuli honesty). Few cases — each one
// is a complete 12-hour simulation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn audited_full_system_run_is_violation_free(
        seed in 0u64..1_000,
        loss in 0.0f64..0.5,
        newscast in prop::bool::ANY,
    ) {
        let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(seed);
        let (setup, _) = fig6_setup(&trace, 0.25, 0.25, seed);
        let protocol = ProtocolConfig {
            experience_t_mib: 1.0,
            message_loss: loss,
            use_newscast_pss: newscast,
            ..ProtocolConfig::default()
        };
        let mut system = System::new(trace, protocol, setup, seed);
        system.enable_audit();
        system.run_until(SimTime::from_hours(12), SimDuration::from_hours(12), |_, _| {});
        let auditor = system.auditor().expect("audit enabled");
        prop_assert!(auditor.checks() > 0, "auditor performed no checks");
        prop_assert_eq!(system.audit_violations(), &[] as &[String]);
    }
}
