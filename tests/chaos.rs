//! Chaos suite: the full stack under the fault-injection plane.
//!
//! The acceptance scenario combines 30% burst loss, 2× mean-latency
//! jitter, 5% duplication, one 4-hour partition, and 3 crash-restarts.
//! Every run must finish with a clean audit (no double-applied votes, no
//! delivery across an active partition, exact conservation) and still
//! converge; the same seed must replay to byte-identical telemetry.

use proptest::prelude::*;
use robust_vote_sampling::attacks::{Flooder, Malformer};
use robust_vote_sampling::faults::{
    BurstLoss, CrashSpec, FaultConfig, FaultSchedule, PartitionSpec, RetryConfig,
};
use robust_vote_sampling::guard::GuardConfig;
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

/// Fixed seeds the CI chaos job sweeps.
const SEEDS: [u64; 3] = [101, 202, 303];

/// Assert the run's invariant auditor saw checks and no violations.
fn assert_clean_audit(system: &System) {
    let auditor = system.auditor().expect("audit enabled");
    assert!(auditor.checks() > 0, "auditor performed no checks");
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations detected"
    );
}

/// The acceptance-criteria schedule: 30% burst loss (mean burst 8
/// messages), latency jittering up to 2× the 5 s mean, 5% duplication,
/// one 4-hour partition over a third of the population, 3 crash-restarts,
/// and retry/backoff enabled so degradation is graceful.
fn chaos_schedule() -> FaultSchedule {
    FaultSchedule {
        config: FaultConfig {
            base_latency_ms: 5_000,
            jitter_spread: 1.0,
            loss: 0.0,
            duplicate: 0.05,
            burst: Some(BurstLoss::with_overall_loss(0.3, 8.0)),
            retry: Some(RetryConfig::default()),
        },
        partitions: vec![PartitionSpec {
            name: "split".into(),
            members: (0..8).map(NodeId::from_index).collect(),
            start: SimTime::from_hours(6),
            heal: SimTime::from_hours(10),
        }],
        crashes: vec![
            CrashSpec {
                node: NodeId::from_index(3),
                at: SimTime::from_hours(8),
            },
            CrashSpec {
                node: NodeId::from_index(11),
                at: SimTime::from_hours(15),
            },
            CrashSpec {
                node: NodeId::from_index(17),
                at: SimTime::from_hours(22),
            },
        ],
    }
}

/// Run the fig6 scenario under `schedule` for `hours`, fully audited.
fn chaos_run(seed: u64, hours: u64, schedule: FaultSchedule) -> (System, f64) {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(hours)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::with_faults(trace, protocol, setup, seed, schedule);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours(hours),
        |_, _| {},
    );
    let acc = system.ordering_accuracy(&m);
    (system, acc)
}

#[test]
fn acceptance_schedule_survives_all_seeds() {
    for seed in SEEDS {
        let (system, acc) = chaos_run(seed, 36, chaos_schedule());
        assert_clean_audit(&system);
        assert!(
            acc > 0.5,
            "seed {seed}: ordering accuracy {acc} <= 0.5 under chaos"
        );

        let snap = system.telemetry_snapshot();
        let f = &snap.faults;
        assert_eq!(f.crash_restarts, 3, "seed {seed}: all crashes must fire");
        assert!(f.delayed > 0, "seed {seed}: latency fault never engaged");
        assert!(f.dropped_burst > 0, "seed {seed}: burst loss never engaged");
        assert!(f.duplicated > 0, "seed {seed}: duplication never engaged");
        assert!(
            f.dedup_suppressed > 0,
            "seed {seed}: no duplicate was ever suppressed — dedup untested"
        );
        assert!(
            f.partitioned > 0,
            "seed {seed}: partition never cut traffic"
        );
        assert!(f.retries > 0, "seed {seed}: retry path never engaged");
        assert!(f.reordered > 0, "seed {seed}: jitter never reordered sends");

        // Fault-aware conservation, re-checked from the outside: every
        // attempt delivered, dropped for an attributed reason, or still
        // in flight at the end of the run.
        let e = &snap.encounters;
        assert_eq!(
            e.attempted,
            e.delivered
                + snap.total_dropped()
                + f.dropped_burst
                + f.partitioned
                + f.dropped_expired
                + system.in_flight(),
            "seed {seed}: conservation identity broken: {e:?} / {f:?}"
        );
    }
}

/// `chaos_run`, pinned to an explicit worker count.
fn chaos_run_threads(
    seed: u64,
    hours: u64,
    schedule: FaultSchedule,
    threads: usize,
) -> (System, f64) {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(hours)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::with_faults(trace, protocol, setup, seed, schedule);
    system.set_threads(threads);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours(hours),
        |_, _| {},
    );
    let acc = system.ordering_accuracy(&m);
    (system, acc)
}

#[test]
fn acceptance_schedule_is_thread_count_invariant() {
    // The full acceptance fault soup — burst loss, jitter reordering,
    // duplication, a partition, crash-restarts, retries — at 1 worker vs
    // 4 workers: byte-identical telemetry, bit-identical accuracy.
    let seed = SEEDS[0];
    let (serial, acc_1) = chaos_run_threads(seed, 36, chaos_schedule(), 1);
    let (sharded, acc_4) = chaos_run_threads(seed, 36, chaos_schedule(), 4);
    assert_clean_audit(&serial);
    assert_clean_audit(&sharded);
    assert_eq!(
        acc_1.to_bits(),
        acc_4.to_bits(),
        "accuracy diverged across thread counts"
    );
    assert_eq!(
        serial
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        sharded
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        "telemetry diverged across thread counts under the acceptance schedule"
    );
    assert_eq!(serial.in_flight(), sharded.in_flight());
}

#[test]
fn chaos_replays_byte_identical() {
    for seed in SEEDS {
        let (a, acc_a) = chaos_run(seed, 36, chaos_schedule());
        let (b, acc_b) = chaos_run(seed, 36, chaos_schedule());
        assert_eq!(acc_a, acc_b, "seed {seed}: accuracy diverged on replay");
        assert_eq!(
            a.telemetry_snapshot().counters_only().to_json_compact(),
            b.telemetry_snapshot().counters_only().to_json_compact(),
            "seed {seed}: telemetry diverged on replay"
        );
    }
}

#[test]
fn fault_free_schedule_matches_plain_system_byte_for_byte() {
    // The fault plane must be invisible when inert: same seed, with and
    // without the (empty) schedule, produces identical telemetry.
    let seed = 17;
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(seed);
    let (setup, _) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut plain = System::new(trace.clone(), protocol, setup.clone(), seed);
    let mut inert = System::with_faults(trace, protocol, setup, seed, FaultSchedule::inert());
    for system in [&mut plain, &mut inert] {
        system.enable_audit();
        system.run_until(
            SimTime::from_hours(12),
            SimDuration::from_hours(12),
            |_, _| {},
        );
        assert_clean_audit(system);
    }
    assert_eq!(
        plain.telemetry_snapshot().counters_only().to_json_compact(),
        inert.telemetry_snapshot().counters_only().to_json_compact(),
        "an inert fault plane must not change behaviour"
    );
    assert_eq!(plain.telemetry_snapshot().faults.total(), 0);
}

#[test]
fn schedule_json_drives_the_same_run() {
    // The CLI path: a schedule serialized to JSON and parsed back drives
    // an identical run (what `rvs run --faults FILE` relies on).
    let parsed = FaultSchedule::from_json(&chaos_schedule().to_json()).expect("roundtrip");
    assert_eq!(parsed, chaos_schedule());
    let (a, acc_a) = chaos_run(7, 12, chaos_schedule());
    let (b, acc_b) = chaos_run(7, 12, parsed);
    assert_eq!(acc_a, acc_b);
    assert_eq!(
        a.telemetry_snapshot().counters_only().to_json_compact(),
        b.telemetry_snapshot().counters_only().to_json_compact()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seeded schedule: the run completes without panicking, the
    /// auditor stays clean, and a replay is byte-identical.
    #[test]
    fn any_seeded_schedule_is_safe_and_replayable(seed in any::<u64>()) {
        let schedule = FaultSchedule::random(seed, 12, SimDuration::from_hours(6));
        schedule.validate().expect("random schedules validate");
        let (a, acc_a) = chaos_run(seed, 6, schedule.clone());
        assert_clean_audit(&a);
        prop_assert!((0.0..=1.0).contains(&acc_a));
        let (b, acc_b) = chaos_run(seed, 6, schedule);
        prop_assert_eq!(acc_a, acc_b);
        prop_assert_eq!(
            a.telemetry_snapshot().counters_only().to_json_compact(),
            b.telemetry_snapshot().counters_only().to_json_compact()
        );
    }
}

/// Guard preset for the byzantine scenario: active defaults with a
/// deliberately small inbox so flood pressure exercises the bounded-inbox
/// drop policy, not just the token buckets.
fn byzantine_guard() -> GuardConfig {
    GuardConfig {
        inbox_cap: 8,
        ..GuardConfig::active()
    }
}

/// The acceptance attack run: >20% of the population floods (5 of 24
/// peers at 12 extra sends per round), the wire mutates 10% of guarded
/// sub-messages, all stacked on top of the full chaos fault soup.
fn byzantine_run(
    seed: u64,
    hours: u64,
    threads: usize,
    attack: bool,
    guard: GuardConfig,
) -> (System, f64) {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(hours)).generate(seed);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::with_faults(trace, protocol, setup, seed, chaos_schedule());
    system.set_threads(threads);
    system.set_guard_config(guard);
    if attack {
        system.set_flooder(Flooder::new((19..24).map(NodeId::from_index), 12));
        system.set_malformer(Malformer::new(100));
    }
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(hours),
        SimDuration::from_hours(hours),
        |_, _| {},
    );
    let acc = system.ordering_accuracy(&m);
    (system, acc)
}

#[test]
fn byzantine_schedule_survives_with_typed_attribution() {
    for seed in SEEDS {
        let (system, acc) = byzantine_run(seed, 36, 1, true, byzantine_guard());
        assert_clean_audit(&system);

        let snap = system.telemetry_snapshot();
        let g = &snap.guard;
        // The adversaries actually fired...
        assert!(g.flooder_sends > 0, "seed {seed}: flooder never sent");
        assert!(
            g.malformer_mutations > 0,
            "seed {seed}: malformer never mutated"
        );
        // ...and every defense layer pushed back with a typed reason.
        assert!(
            g.rejected_rate_limited > 0,
            "seed {seed}: token buckets never engaged"
        );
        assert!(
            g.quarantines_started > 0,
            "seed {seed}: no flooder was ever quarantined"
        );
        assert!(
            g.rejected_quarantined > 0,
            "seed {seed}: quarantine never refused traffic"
        );
        assert!(
            g.quarantines_released > 0,
            "seed {seed}: capped quarantines must eventually release"
        );
        let structural = g.rejected_list_too_long
            + g.rejected_duplicate_entry
            + g.rejected_future_timestamp
            + g.rejected_stale_timestamp
            + g.rejected_bad_signature
            + g.rejected_invalid_node
            + g.rejected_self_reference
            + g.rejected_hearsay_record
            + g.rejected_oversized
            + g.rejected_malformed;
        assert!(
            structural > 0,
            "seed {seed}: wire mutation never tripped a structural gate"
        );
        assert!(g.accepted > 0, "seed {seed}: honest traffic starved");
        assert!(
            g.inbox_dropped > 0,
            "seed {seed}: bounded inbox never engaged under flood"
        );
        assert!(
            system.max_seen_window() <= GuardConfig::default().seen_window as usize,
            "seed {seed}: dedup window exceeded its cap"
        );

        // Conservation, extended with the guard's inbox drops: every
        // attempt (honest or flood) delivered, dropped for an attributed
        // reason, or still in flight.
        let e = &snap.encounters;
        let f = &snap.faults;
        assert_eq!(
            e.attempted,
            e.delivered
                + snap.total_dropped()
                + f.dropped_burst
                + f.partitioned
                + f.dropped_expired
                + g.inbox_dropped
                + system.in_flight(),
            "seed {seed}: conservation identity broken under attack: {e:?} / {g:?}"
        );

        // The honest ranking survives the attack: absolute convergence
        // holds and the attacked run stays within one rank-pair swap of
        // the attack-free guarded baseline.
        let (_, baseline) = byzantine_run(seed, 36, 1, false, byzantine_guard());
        assert!(
            acc > 0.5,
            "seed {seed}: ordering accuracy {acc} <= 0.5 under attack"
        );
        assert!(
            acc >= baseline - 0.34,
            "seed {seed}: attack degraded accuracy {baseline} -> {acc}"
        );
    }
}

#[test]
fn byzantine_schedule_is_thread_count_invariant() {
    // Flood + wire mutation + the full fault soup at 1 worker vs 4
    // workers: byte-identical telemetry (including every typed guard
    // counter), bit-identical accuracy.
    let seed = SEEDS[0];
    let (serial, acc_1) = byzantine_run(seed, 36, 1, true, byzantine_guard());
    let (sharded, acc_4) = byzantine_run(seed, 36, 4, true, byzantine_guard());
    assert_clean_audit(&serial);
    assert_clean_audit(&sharded);
    assert_eq!(
        acc_1.to_bits(),
        acc_4.to_bits(),
        "accuracy diverged across thread counts under attack"
    );
    assert_eq!(
        serial
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        sharded
            .telemetry_snapshot()
            .counters_only()
            .to_json_compact(),
        "telemetry diverged across thread counts under the byzantine schedule"
    );
    assert_eq!(serial.in_flight(), sharded.in_flight());
}

#[test]
fn flooded_dedup_windows_stay_bounded() {
    // Satellite regression: a deliberately tiny dedup window under flood
    // and 5% duplication stays at its cap, keeps suppressing duplicates,
    // and replays byte-identically.
    let seed = SEEDS[1];
    let tiny = GuardConfig {
        seen_window: 32,
        ..byzantine_guard()
    };
    let (a, acc_a) = byzantine_run(seed, 12, 1, true, tiny);
    assert_clean_audit(&a);
    assert!(
        a.max_seen_window() <= 32,
        "dedup window exceeded the configured cap"
    );
    let f = a.telemetry_snapshot().faults;
    assert!(f.duplicated > 0, "duplication fault never engaged");
    assert!(
        f.dedup_suppressed > 0,
        "eviction broke duplicate suppression entirely"
    );
    let (b, acc_b) = byzantine_run(seed, 12, 1, true, tiny);
    assert_eq!(acc_a, acc_b, "bounded-window run diverged on replay");
    assert_eq!(
        a.telemetry_snapshot().counters_only().to_json_compact(),
        b.telemetry_snapshot().counters_only().to_json_compact()
    );
}
