//! Differential proof of the incremental contribution cache at the package
//! boundary: a cached [`BarterCast`] and a cache-disabled twin, driven
//! through arbitrary interleavings of record installs, exchanges, and
//! contribution / experience queries, must be observationally identical —
//! byte-for-byte on every `u64` flow and on every `f64` MiB conversion.
//!
//! The cache-disabled twin recomputes a hop-bounded maxflow on every query
//! (the seed implementation), so it is the executable specification the
//! cached path is verified against, in the same spirit as the maxflow
//! module's `closed_form_matches_edmonds_karp_on_random_graphs`.

use proptest::prelude::*;
use robust_vote_sampling::bartercast::{
    AdaptiveThreshold, BarterCast, BarterCastConfig, Record, ThresholdExperience,
};
use robust_vote_sampling::bittorrent::TransferLedger;
use robust_vote_sampling::sim::{DetRng, NodeId};

const N: u32 = 7;

/// Interleaved operation stream, encoded as integer tuples so the strategy
/// stays inside plain tuple/vec combinators: `(opcode, a, b, c, kib)`.
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u32, u32, u32, u64)>> {
    prop::collection::vec((0u8..7, 0u32..N, 0u32..N, 0u32..N, 1u64..50_000), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte-identical observable behaviour under arbitrary interleavings,
    /// across every hop bound the protocol supports in practice (1, 2 use
    /// the fine-grained invalidation tier; 3 uses full flushes).
    #[test]
    fn cache_is_observationally_invisible(ops in arb_ops(), hops in 1usize..4) {
        let cfg = BarterCastConfig {
            max_hops: hops,
            ..BarterCastConfig::default()
        };
        let mut cached = BarterCast::new(N as usize, cfg);
        let mut plain = BarterCast::new(N as usize, cfg.without_cache());
        let mut ledger = TransferLedger::new();
        let fixed = ThresholdExperience::PAPER_DEFAULT;
        let adaptive = AdaptiveThreshold {
            t_mib: 2.0,
            ..AdaptiveThreshold::default()
        };
        let mut audit_rng = DetRng::new(0xCAFE);

        for &(op, a, b, c, kib) in &ops {
            let (x, y, z) = (NodeId(a), NodeId(b), NodeId(c));
            match op {
                // Ground truth grows; nodes only see it after a sync.
                0 => ledger.credit(x, y, kib),
                1 => {
                    cached.sync_own_records(x, &ledger);
                    plain.sync_own_records(x, &ledger);
                }
                2 => {
                    cached.exchange(x, y);
                    plain.exchange(x, y);
                }
                // Attack hook: possibly fabricated record from reporter y.
                3 => {
                    let rec = Record { from: z, to: y, kib };
                    prop_assert_eq!(
                        cached.inject_report(x, y, rec),
                        plain.inject_report(x, y, rec)
                    );
                }
                // Raw contribution queries, single and batched.
                4 => {
                    prop_assert_eq!(
                        cached.contribution_kib(x, y),
                        plain.contribution_kib(x, y)
                    );
                    prop_assert_eq!(
                        cached.contribution_mib(x, y).to_bits(),
                        plain.contribution_mib(x, y).to_bits()
                    );
                }
                5 => {
                    let peers: Vec<NodeId> = (0..N).map(NodeId).collect();
                    prop_assert_eq!(
                        cached.contributions_kib(x, &peers),
                        plain.contributions_kib(x, &peers)
                    );
                }
                // Experience gating, fixed and adaptive thresholds.
                _ => {
                    prop_assert_eq!(
                        fixed.is_experienced(&cached, x, y),
                        fixed.is_experienced(&plain, x, y)
                    );
                    prop_assert_eq!(
                        adaptive.experienced_batch(&cached, x, &[y, z]),
                        adaptive.experienced_batch(&plain, x, &[y, z])
                    );
                }
            }
            // The sampled coherence audit must stay clean at every prefix
            // of the interleaving, not just at the end.
            let probe = NodeId(audit_rng.below(N as u64) as u32);
            let violations = cached.audit_cache_coherence(probe, 3, &mut audit_rng);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }

        // Both twins answered the same number of queries during the
        // interleaving; only where the answers came from may differ. (Checked
        // before the sweep below, which deliberately queries the plain twin
        // through its counter-free oracle.)
        let (c, p) = (cached.counters(), plain.counters());
        prop_assert_eq!(c.cache_hits + c.cache_misses, p.maxflow_evaluations);
        prop_assert_eq!(c.exchanges, p.exchanges);

        // Final exhaustive sweep: all pairs agree and graphs are equal.
        for i in (0..N).map(NodeId) {
            for j in (0..N).map(NodeId) {
                prop_assert_eq!(
                    cached.contribution_kib(i, j),
                    plain.contribution_kib_uncached(i, j)
                );
            }
            prop_assert_eq!(cached.graph(i), plain.graph(i));
        }
    }
}
