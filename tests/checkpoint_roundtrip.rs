//! Property-based proofs of the *system-level* checkpoint contract, on top
//! of the per-codec properties in `crates/checkpoint/tests/proptests.rs`:
//!
//! * restore → re-checkpoint is byte-identical across random small systems
//!   (the encoding has one canonical form per state);
//! * truncating a real checkpoint anywhere yields a typed error from
//!   `Checkpoint::from_bytes` or `System::restore` — never a panic, never
//!   a silently half-restored system;
//! * flipping any bit of a real checkpoint never panics: either a typed
//!   error surfaces, or the blob still describes a consistent system whose
//!   re-encoding is a canonical fixed point;
//! * version skew is a typed `WrongVersion` before any payload is trusted.

use proptest::prelude::*;
use robust_vote_sampling::faults::FaultSchedule;
use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{Checkpoint, ProtocolConfig, System};
use rvs_checkpoint::DecodeError;
use rvs_sim::{SimDuration, SimTime};
use rvs_trace::TraceGenConfig;
use std::sync::OnceLock;

fn build(peers: usize, hours: u64, seed: u64) -> System {
    let trace = TraceGenConfig::quick(peers, SimDuration::from_hours(hours)).generate(seed);
    let (setup, _m) = fig6_setup(&trace, 0.25, 0.25, seed);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    System::with_faults(trace, protocol, setup, seed, FaultSchedule::default())
}

/// One mid-run checkpoint, shared by the mutation properties so the
/// (comparatively expensive) simulation runs once.
fn base_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut system = build(10, 6, 7);
        system.run_until(
            SimTime::from_hours(3),
            SimDuration::from_hours(1),
            |_, _| {},
        );
        system.checkpoint().into_bytes()
    })
}

/// Decode + restore, all the way to a `System`, with typed errors.
fn try_restore(bytes: &[u8]) -> Result<System, DecodeError> {
    let ckpt = Checkpoint::from_bytes(bytes.to_vec())?;
    System::restore(&ckpt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Restoring a checkpoint and immediately re-encoding it reproduces
    /// the original bytes exactly, across random small systems and
    /// checkpoint times.
    #[test]
    fn restore_reencode_is_byte_identical(
        seed in 1u64..500,
        peers in 6usize..11,
        stop_frac in 0.25f64..0.95,
    ) {
        let hours = 4u64;
        let mut system = build(peers, hours, seed);
        let stop = SimTime::from_secs((hours as f64 * 3600.0 * stop_frac) as u64);
        system.run_until(stop, SimDuration::from_hours(1), |_, _| {});
        let bytes = system.checkpoint().into_bytes();
        let restored = try_restore(&bytes)
            .map_err(|e| TestCaseError::fail(format!("self-produced checkpoint failed: {e}")))?;
        prop_assert_eq!(restored.checkpoint().into_bytes(), bytes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any truncation of a real checkpoint is rejected with a typed error.
    #[test]
    fn truncation_never_panics_and_errors(frac in 0.0f64..1.0) {
        let bytes = base_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(
            try_restore(&bytes[..cut]).is_err(),
            "checkpoint truncated to {} of {} bytes restored cleanly",
            cut,
            bytes.len()
        );
    }

    /// A single bit-flip anywhere in a real checkpoint never panics. When
    /// the damaged blob still restores (the flip landed in a value any
    /// system could hold), its re-encoding must be a canonical fixed
    /// point: restore → checkpoint → restore → checkpoint is byte-stable.
    #[test]
    fn bit_flip_never_panics(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = base_bytes().to_vec();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(restored) = try_restore(&bytes) {
            let canon = restored.checkpoint().into_bytes();
            let again = try_restore(&canon)
                .map_err(|e| TestCaseError::fail(format!("canonical re-restore failed: {e}")))?;
            prop_assert_eq!(again.checkpoint().into_bytes(), canon);
        }
    }

    /// A version-skewed header is a typed `WrongVersion` before any of the
    /// payload is trusted, and the strict `info()` reports the same.
    #[test]
    fn wrong_version_is_typed(version in 0u32..u32::MAX) {
        prop_assume!(version != rvs_checkpoint::FORMAT_VERSION);
        let mut bytes = base_bytes().to_vec();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        match try_restore(&bytes) {
            Ok(_) => return Err(TestCaseError::fail("skewed version restored")),
            Err(err) => prop_assert_eq!(
                err,
                DecodeError::WrongVersion {
                    found: version,
                    supported: rvs_checkpoint::FORMAT_VERSION
                }
            ),
        }
    }
}
