//! End-to-end integration: the full protocol stack on synthetic traces.

use robust_vote_sampling::scenario::experiments::vote_sampling::fig6_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, ScenarioSetup, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

fn quick_protocol() -> ProtocolConfig {
    ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    }
}

/// Every integration run doubles as an invariant audit: conservation of
/// encounters, the `B_max` ballot bound, experience gating, and VoxPopuli
/// bootstrap honesty are re-checked after every round and encounter.
fn assert_clean_audit(system: &System) {
    let auditor = system.auditor().expect("audit enabled");
    assert!(auditor.checks() > 0, "auditor performed no checks");
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations detected"
    );
}

#[test]
fn population_converges_on_correct_ordering() {
    let trace = TraceGenConfig::quick(24, SimDuration::from_hours(36)).generate(11);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 11);
    let mut system = System::new(trace, quick_protocol(), setup, 11);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(36),
        SimDuration::from_hours(36),
        |_, _| {},
    );
    let acc = system.ordering_accuracy(&m);
    assert!(acc > 0.6, "population should converge, accuracy {acc}");
    assert_clean_audit(&system);
}

#[test]
fn full_system_run_is_deterministic() {
    let run = || {
        let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(3);
        let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 3);
        let mut system = System::new(trace, quick_protocol(), setup, 3);
        system.enable_audit();
        let mut curve = Vec::new();
        system.run_until(
            SimTime::from_hours(12),
            SimDuration::from_hours(2),
            |sys, t| {
                curve.push((t, sys.ordering_accuracy(&m)));
            },
        );
        assert_clean_audit(&system);
        (curve, system.net().ledger().total_kib())
    };
    assert_eq!(run(), run());
}

#[test]
fn experience_requires_contribution() {
    let trace = TraceGenConfig::quick(16, SimDuration::from_hours(12)).generate(5);
    let mut system = System::new(trace, quick_protocol(), ScenarioSetup::default(), 5);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(12),
        SimDuration::from_hours(12),
        |_, _| {},
    );
    let n = system.trace_peer_count();
    // Experience must follow actual BarterCast contributions: E_i(j) holds
    // exactly when f_{j→i} >= T.
    let mut experienced_pairs = 0;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (ni, nj) = (NodeId::from_index(i), NodeId::from_index(j));
            let e = system.experienced(ni, nj);
            let f = system.contribution_mib(ni, nj);
            assert_eq!(e, f >= 1.0, "E_{{{i}}}({j}) inconsistent with f={f}");
            if e {
                experienced_pairs += 1;
            }
        }
    }
    assert!(
        experienced_pairs > 0,
        "after 12h of swarming some experience must exist"
    );
    assert_clean_audit(&system);
}

#[test]
fn cev_matches_manual_computation() {
    let trace = TraceGenConfig::quick(12, SimDuration::from_hours(8)).generate(7);
    let mut system = System::new(trace, quick_protocol(), ScenarioSetup::default(), 7);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(8),
        SimDuration::from_hours(8),
        |_, _| {},
    );
    let n = system.trace_peer_count();
    let t = 1.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j && system.contribution_mib(NodeId::from_index(i), NodeId::from_index(j)) >= t
            {
                count += 1;
            }
        }
    }
    let expected = count as f64 / (n * (n - 1)) as f64;
    assert!((system.cev(t) - expected).abs() < 1e-12);
    assert_clean_audit(&system);
}

#[test]
fn moderations_disseminate_through_full_stack() {
    let trace = TraceGenConfig::quick(20, SimDuration::from_hours(24)).generate(13);
    let (setup, m) = fig6_setup(&trace, 0.25, 0.25, 13);
    let mut system = System::new(trace, quick_protocol(), setup, 13);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(24),
        SimDuration::from_hours(24),
        |_, _| {},
    );
    // M1's moderation is approved by voters and must spread widely; the
    // unvoted M2 spreads only via direct contact but should reach someone.
    let c1 = system.modcast().coverage(m[0]);
    let c2 = system.modcast().coverage(m[1]);
    assert!(
        c1 >= c2,
        "approved moderator at least as covered: {c1} vs {c2}"
    );
    assert!(c1 > 5, "M1 coverage too small: {c1}");
    assert!(c2 >= 1);
    assert_clean_audit(&system);
}

#[test]
fn vote_lists_flow_into_ballots_only_via_experience() {
    let trace = TraceGenConfig::quick(20, SimDuration::from_hours(18)).generate(17);
    let (setup, _) = fig6_setup(&trace, 0.3, 0.0, 17);
    // Impossibly high threshold: no node can ever be experienced.
    let protocol = ProtocolConfig {
        experience_t_mib: 1e12,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 17);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(18),
        SimDuration::from_hours(18),
        |_, _| {},
    );
    for i in 0..system.trace_peer_count() {
        assert!(
            system.votes().ballot(NodeId::from_index(i)).is_empty(),
            "node {i} accepted votes despite an unreachable threshold"
        );
    }
    assert_clean_audit(&system);
}

#[test]
fn newscast_pss_variant_also_converges() {
    let trace = TraceGenConfig::quick(20, SimDuration::from_hours(36)).generate(19);
    let (setup, m) = fig6_setup(&trace, 0.3, 0.3, 19);
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        use_newscast_pss: true,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 19);
    system.enable_audit();
    system.run_until(
        SimTime::from_hours(36),
        SimDuration::from_hours(36),
        |_, _| {},
    );
    let acc = system.ordering_accuracy(&m);
    assert!(
        acc > 0.4,
        "gossip PSS should still allow convergence, accuracy {acc}"
    );
    assert_clean_audit(&system);
}
