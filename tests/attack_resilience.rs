//! Integration tests of the security claims: who a flash crowd can and
//! cannot poison, and how the system recovers.

use robust_vote_sampling::scenario::experiments::spam::fig8_setup;
use robust_vote_sampling::scenario::{ProtocolConfig, System};
use rvs_sim::{NodeId, SimDuration, SimTime};
use rvs_trace::TraceGenConfig;

/// Assert the run's invariant auditor saw checks and no violations.
fn assert_clean_audit(system: &System) {
    let auditor = system.auditor().expect("audit enabled");
    assert!(auditor.checks() > 0, "auditor performed no checks");
    assert_eq!(
        system.audit_violations(),
        &[] as &[String],
        "invariant violations detected"
    );
}

fn attack_system(crowd_size: usize, seed: u64) -> (System, NodeId, Vec<NodeId>) {
    let trace = TraceGenConfig::quick(30, SimDuration::from_hours(24)).generate(seed);
    let setup = fig8_setup(&trace, 8, crowd_size);
    let core = setup.core.as_ref().unwrap().members.clone();
    let spam = NodeId::from_index(trace.peer_count());
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, seed);
    system.enable_audit();
    (system, spam, core)
}

#[test]
fn experienced_core_is_never_polluted() {
    let (mut system, spam, core) = attack_system(16, 23);
    let mut core_clean = true;
    system.run_until(
        SimTime::from_hours(24),
        SimDuration::from_hours(2),
        |sys, _| {
            for &c in &core {
                if sys.display_ranking(c).first() == Some(&spam) {
                    core_clean = false;
                }
            }
        },
    );
    assert!(core_clean, "the flash crowd must never poison the core");
    assert_clean_audit(&system);
}

#[test]
fn crowd_votes_never_enter_honest_ballots() {
    let (mut system, _, _) = attack_system(16, 29);
    system.run_until(
        SimTime::from_hours(24),
        SimDuration::from_hours(24),
        |_, _| {},
    );
    let crowd: Vec<NodeId> = system.crowd().unwrap().members().collect();
    for i in 0..system.trace_peer_count() {
        let ballot = system.votes().ballot(NodeId::from_index(i));
        for (voter, _, _, _) in ballot.iter() {
            assert!(
                !crowd.contains(&voter),
                "crowd voter {voter} reached an honest ballot — zero-contribution \
                 identities must fail the experience function"
            );
        }
    }
    assert_clean_audit(&system);
}

#[test]
fn crowd_members_are_never_experienced() {
    let (mut system, _, _) = attack_system(12, 31);
    system.run_until(
        SimTime::from_hours(24),
        SimDuration::from_hours(24),
        |_, _| {},
    );
    let crowd: Vec<NodeId> = system.crowd().unwrap().members().collect();
    for i in 0..system.trace_peer_count() {
        for &c in &crowd {
            assert!(
                !system.experienced(NodeId::from_index(i), c),
                "crowd identity {c} appears experienced to node {i}"
            );
        }
    }
    assert_clean_audit(&system);
}

#[test]
fn pollution_eventually_recovers() {
    let (mut system, spam, _) = attack_system(16, 37);
    let mut series = Vec::new();
    system.run_until(
        SimTime::from_hours(24),
        SimDuration::from_hours(2),
        |sys, t| {
            series.push((t, sys.new_node_pollution(spam)));
        },
    );
    let peak = series.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    let final_v = series.last().unwrap().1;
    assert!(
        final_v <= peak,
        "pollution should not keep growing: peak {peak}, final {final_v}"
    );
    assert!(
        final_v < 0.5,
        "most nodes should have recovered by 24h, final pollution {final_v}"
    );
    assert_clean_audit(&system);
}

#[test]
fn disabling_voxpopuli_blocks_the_attack_entirely() {
    let trace = TraceGenConfig::quick(30, SimDuration::from_hours(24)).generate(41);
    let setup = fig8_setup(&trace, 8, 16);
    let spam = NodeId::from_index(trace.peer_count());
    let protocol = ProtocolConfig {
        experience_t_mib: 1.0,
        vox_enabled: false,
        ..ProtocolConfig::default()
    };
    let mut system = System::new(trace, protocol, setup, 41);
    system.enable_audit();
    let mut max_pollution = 0.0_f64;
    system.run_until(
        SimTime::from_hours(24),
        SimDuration::from_hours(2),
        |sys, _| {
            max_pollution = max_pollution.max(sys.new_node_pollution(spam));
        },
    );
    assert_eq!(
        max_pollution, 0.0,
        "without VoxPopuli the crowd has no channel into honest nodes"
    );
    assert_clean_audit(&system);
}
